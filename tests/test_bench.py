"""Tests for the hot-loop throughput benchmark and its CLI."""

import json

import pytest

from repro.__main__ import main
from repro.core.accord import AccordDesign
from repro.errors import ReproError
from repro.sim.bench import (
    BENCH_DESIGNS,
    compare_to_baseline,
    format_report,
    load_report,
    run_bench,
    save_report,
)

TINY = dict(num_accesses=800, scale=1.0 / 2048.0, repeats=1)


def tiny_report(designs=(AccordDesign(kind="direct", ways=1),)):
    return run_bench(designs=designs, **TINY)


class TestRunBench:
    def test_report_shape(self):
        designs = (
            AccordDesign(kind="direct", ways=1),
            AccordDesign(kind="accord", ways=2),
            AccordDesign(kind="ca", ways=1),
        )
        report = tiny_report(designs)
        assert report["schema"] == 1
        assert report["num_accesses"] == 800
        assert [row["design"] for row in report["designs"]] == [
            d.display_name for d in designs
        ]
        for row in report["designs"]:
            assert row["accesses_per_sec"] > 0
            assert row["elapsed_sec"] > 0
            assert 0.0 <= row["hit_rate"] <= 1.0
        assert report["aggregate_accesses_per_sec"] > 0

    def test_design_set_covers_every_kind(self):
        from repro.core.accord import DESIGN_KINDS

        assert {d.kind for d in BENCH_DESIGNS} == set(DESIGN_KINDS)

    def test_rejects_zero_repeats(self):
        with pytest.raises(ReproError, match="repeat"):
            run_bench(repeats=0)

    def test_format_report_lists_designs(self):
        report = tiny_report()
        text = format_report(report)
        assert "direct-1way" in text
        assert "aggregate:" in text


class TestReportIo:
    def test_save_load_roundtrip(self, tmp_path):
        report = tiny_report()
        path = str(tmp_path / "bench.json")
        save_report(report, path)
        assert load_report(path) == report

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_report(str(tmp_path / "absent.json"))

    def test_load_rejects_non_report_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"unrelated": True}))
        with pytest.raises(ReproError, match="not a bench report"):
            load_report(str(path))


class TestCompareToBaseline:
    def _report(self, aggregate):
        return {"aggregate_accesses_per_sec": aggregate}

    def test_within_tolerance_passes(self):
        assert compare_to_baseline(
            self._report(80_000), self._report(100_000), 0.30
        ) is None

    def test_improvement_passes(self):
        assert compare_to_baseline(
            self._report(150_000), self._report(100_000), 0.30
        ) is None

    def test_regression_beyond_tolerance_fails(self):
        message = compare_to_baseline(
            self._report(60_000), self._report(100_000), 0.30
        )
        assert message is not None
        assert "regressed" in message

    def _engine_report(self, aggregate, per_engine):
        return {
            "aggregate_accesses_per_sec": aggregate,
            "per_engine_accesses_per_sec": per_engine,
        }

    def test_engine_regression_cannot_hide_behind_the_total(self):
        """A replay-path collapse masked by a vector gain in the mixed
        total must still fail: each engine bucket is gated."""
        baseline = self._engine_report(
            100_000, {"vector": 500_000, "replay": 60_000}
        )
        current = self._engine_report(
            120_000, {"vector": 900_000, "replay": 20_000}
        )
        message = compare_to_baseline(current, baseline, 0.30)
        assert message is not None
        assert "replay-engine" in message

    def test_engine_buckets_within_tolerance_pass(self):
        baseline = self._engine_report(
            100_000, {"vector": 500_000, "replay": 60_000}
        )
        current = self._engine_report(
            101_000, {"vector": 510_000, "replay": 55_000}
        )
        assert compare_to_baseline(current, baseline, 0.30) is None

    def test_engine_coverage_moves_are_judged_by_the_total(self):
        """An engine present on one side only (coverage moved down or
        up the chain) does not fail by itself."""
        baseline = self._engine_report(100_000, {"stream": 90_000})
        current = self._engine_report(110_000, {"replay": 400_000})
        assert compare_to_baseline(current, baseline, 0.30) is None

    def test_reports_without_sub_aggregates_still_compare(self):
        """Pre-sub-aggregate baselines (older schema) stay valid."""
        assert compare_to_baseline(
            self._engine_report(100_000, {"vector": 1}),
            self._report(100_000),
            0.30,
        ) is None


class TestBenchCli:
    ARGS = ["bench", "--accesses", "800", "--scale", str(1.0 / 2048.0),
            "--repeats", "1"]

    def test_bench_prints_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "direct-1way" in out
        assert "aggregate:" in out

    def test_bench_json_and_passing_baseline(self, capsys, tmp_path):
        path = str(tmp_path / "bench.json")
        assert main(self.ARGS + ["--json", path]) == 0
        report = load_report(path)
        assert report["num_accesses"] == 800
        assert set(report["per_engine_accesses_per_sec"]) == {
            row["engine"] for row in report["designs"]
        }
        # A re-run against its own report passes the gate; the wide
        # tolerance keeps the 800-access timing (noisy under a loaded
        # test runner, and gated per engine bucket) out of the check —
        # this exercises the CLI plumbing, not the floor itself.
        assert main(self.ARGS + ["--baseline", path,
                                 "--max-regression", "0.95"]) == 0
        out = capsys.readouterr().out
        assert "baseline check OK" in out

    def test_bench_failing_baseline(self, capsys, tmp_path):
        path = str(tmp_path / "fast.json")
        report = tiny_report()
        report["aggregate_accesses_per_sec"] *= 100.0
        save_report(report, path)
        assert main(self.ARGS + ["--baseline", path]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_bench_unreadable_baseline(self, capsys, tmp_path):
        missing = str(tmp_path / "absent.json")
        assert main(self.ARGS + ["--baseline", missing]) == 2

    @pytest.mark.parametrize(
        "bad",
        [["--accesses", "0"], ["--scale", "2.0"], ["--max-regression", "1.5"]],
        ids=["accesses", "scale", "max-regression"],
    )
    def test_bench_rejects_bad_arguments(self, capsys, bad):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench"] + bad)
        assert excinfo.value.code == 2
