"""Unit tests for the Column-Associative cache baseline."""

import pytest

from repro.cache.ca_cache import ColumnAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.errors import PolicyError


@pytest.fixture
def cache():
    return ColumnAssociativeCache(CacheGeometry(8 * 1024, 1))


class TestConstruction:
    def test_requires_direct_mapped(self):
        with pytest.raises(PolicyError):
            ColumnAssociativeCache(CacheGeometry(8 * 1024, 2))

    def test_rehash_index_differs(self, cache):
        for addr in (0, 64, 4096):
            assert cache.preferred_index(addr) != cache.rehash_index(addr)

    def test_rehash_is_involution(self, cache):
        addr = 0x1000
        first = cache.preferred_index(addr)
        assert first ^ cache._rehash_bit ^ cache._rehash_bit == first


class TestReads:
    def test_miss_installs_at_preferred(self, cache):
        outcome = cache.read(0x2000)
        assert not outcome.hit
        assert cache.contains(0x2000)
        assert cache.read(0x2000).prediction_correct

    def test_conflicting_pair_coresides(self, cache):
        span = cache.geometry.way_span_bytes()
        a, b = 0x0, span  # same preferred index
        cache.read(a)
        cache.read(b)  # a is displaced to... evicted; b at preferred
        # After the pair settles, both can live (one at rehash index)
        # only if the rehash slot was free; CA keeps one of them.
        assert cache.contains(b)

    def test_rehash_hit_swaps(self, cache):
        # Install x, then a conflicting y (x evicted), then refill x;
        # verify a swap occurs when a line is found at the rehash slot.
        a = 0x0
        rehash_equiv = cache.geometry.addr_of(cache.rehash_index(a), 0)
        # Put some line directly at a's rehash index:
        cache.read(rehash_equiv)
        # Now access a line whose preferred index == rehash index of a:
        # the resident line at that slot is hit at ITS preferred slot.
        outcome = cache.read(rehash_equiv)
        assert outcome.hit

    def test_swap_transfers_accounted(self, cache):
        # Construct: line L resident at its rehash slot, then read L.
        a = 0x0
        # Fill preferred slot of `a` with a line whose preferred slot it is.
        cache.read(a)
        # `b` maps preferred to a's rehash index; fill it.
        b = cache.geometry.addr_of(cache.rehash_index(a), 5)
        cache.read(b)
        # Evict a from its preferred slot with a conflicting line c.
        c = a + cache.geometry.way_span_bytes()
        cache.read(c)
        assert cache.stats.swap_transfers >= 0  # counter exists and is sane


class TestAccuracyMetric:
    def test_preferred_hits_count_as_correct(self, cache):
        cache.read(0x1000)
        cache.read(0x1000)
        assert cache.stats.predicted_hits == 1
        assert cache.stats.correct_predictions == 1
        assert cache.stats.prediction_accuracy == 1.0


class TestWriteback:
    def test_resident_writeback(self, cache):
        cache.read(0x3000)
        assert cache.writeback(0x3000)
        assert cache.stats.writeback_direct == 1

    def test_absent_writeback_bypasses(self, cache):
        assert not cache.writeback(0x7000)
        assert cache.stats.nvm_writes == 1

    def test_displacement_preserves_dirty_line(self, cache):
        span = cache.geometry.way_span_bytes()
        cache.read(0x0)
        cache.writeback(0x0)
        cache.read(span)  # displaces dirty 0x0 to the rehash slot
        assert cache.contains(0x0)
        assert cache.stats.dirty_evictions == 0

    def test_dirty_eviction_from_rehash_slot(self, cache):
        span = cache.geometry.way_span_bytes()
        cache.read(0x0)
        cache.writeback(0x0)
        cache.read(span)  # 0x0 displaced to rehash slot (still dirty)
        cache.read(2 * span)  # displaces `span` there, evicting dirty 0x0
        assert not cache.contains(0x0)
        assert cache.stats.dirty_evictions == 1
        assert cache.stats.nvm_writes == 1
