"""Tests for the trace profiler, including calibration closure checks
(generated traces must exhibit the spec's knobs)."""

import pytest

from repro.errors import TraceError
from repro.sim.profile import ReuseDistanceEstimator, profile_trace
from repro.sim.trace import Trace, trace_from_arrays
from repro.workloads.spec import get_workload
from repro.workloads.synthetic import SyntheticWorkload


def make_trace(addrs, writes=None):
    writes = writes if writes is not None else [0] * len(addrs)
    return trace_from_arrays("t", addrs, writes, 50.0)


class TestBasicProfile:
    def test_counts(self):
        trace = make_trace([0, 64, 128, 0], [0, 0, 1, 0])
        profile = profile_trace(trace)
        assert profile.accesses == 4
        assert profile.reads == 3
        assert profile.writes == 1
        assert profile.footprint_lines == 2  # lines 0 and 1 (128 is written)

    def test_run_lengths(self):
        # Two runs: 0,1,2 then 100.
        trace = make_trace([0, 64, 128, 6400])
        profile = profile_trace(trace)
        assert profile.max_run_length == 3
        assert profile.mean_run_length == pytest.approx(2.0)

    def test_region_reuse(self):
        # Same 4KB page hit repeatedly: high region reuse.
        trace = make_trace([0, 64, 128, 192])
        profile = profile_trace(trace)
        assert profile.region_reuse_fraction == pytest.approx(3 / 4)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            profile_trace(Trace("e", [], bytearray(), 1.0))

    def test_summary_renders(self):
        profile = profile_trace(make_trace([0, 64]))
        text = profile.summary()
        assert "footprint" in text and "run length" in text


class TestReuseDistance:
    def test_cold_first_touch(self):
        estimator = ReuseDistanceEstimator()
        estimator.touch(1)
        assert estimator.histogram["cold"] == 1

    def test_short_reuse(self):
        estimator = ReuseDistanceEstimator()
        estimator.touch(1)
        estimator.touch(2)
        estimator.touch(1)
        assert estimator.histogram["<256"] == 1

    def test_long_reuse_bucketed(self):
        estimator = ReuseDistanceEstimator()
        for line in range(5000):
            estimator.touch(line)
        estimator.touch(0)
        assert estimator.histogram["<64K"] == 1


class TestCalibrationClosure:
    """Generated traces must exhibit the spec's declared behaviour."""

    CAPACITY = 4 * 1024 * 1024

    def _profile(self, name):
        spec = get_workload(name).scaled(1.0 / 512.0)
        trace = SyntheticWorkload(spec, self.CAPACITY, seed=5).generate(30_000)
        return spec, profile_trace(trace, reuse_distances=False)

    def test_spatial_workload_has_long_runs(self):
        spec, profile = self._profile("libq")
        assert profile.mean_run_length > 8.0

    def test_sparse_workload_has_short_runs(self):
        spec, profile = self._profile("mcf")
        assert profile.mean_run_length < 3.0

    def test_write_fraction_matches_spec(self):
        for name in ("libq", "mcf", "sphinx"):
            spec, profile = self._profile(name)
            assert abs(profile.write_fraction - spec.write_frac) < 0.06

    def test_footprint_ordering_matches_spec(self):
        _, small = self._profile("sphinx")  # tiny footprint
        _, large = self._profile("mcf")  # huge footprint
        assert small.footprint_lines < large.footprint_lines

    def test_region_reuse_tracks_spatial_locality(self):
        _, spatial = self._profile("nekbone")
        _, sparse = self._profile("pr_twi")
        assert spatial.region_reuse_fraction > sparse.region_reuse_fraction
