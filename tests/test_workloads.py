"""Tests for the workload catalog and synthetic generators."""

import pytest

from repro.errors import WorkloadError
from repro.params.system import PAGE_SIZE
from repro.workloads.cyclic import conflicting_addresses, cyclic_trace
from repro.workloads.mixes import MIX_RECIPES, build_mix_trace
from repro.workloads.spec import (
    EXTENDED_SUITE,
    MAIN_SUITE,
    WorkloadSpec,
    extended_suite,
    get_workload,
    is_mix,
    main_suite,
    rate_mode_specs,
)
from repro.workloads.synthetic import SyntheticWorkload

CAPACITY = 4 * 1024 * 1024  # small cache capacity for generator tests


class TestCatalog:
    def test_suite_sizes(self):
        assert len(MAIN_SUITE) == 21  # 17 rate-mode + 4 mixes
        assert len(EXTENDED_SUITE) == 46  # 29 SPEC + 10 mixes + 6 GAP + 1 HPC

    def test_suite_composition(self):
        specs = [get_workload(w) for w in extended_suite() if not is_mix(w)]
        by_suite = {}
        for spec in specs:
            by_suite[spec.suite] = by_suite.get(spec.suite, 0) + 1
        assert by_suite["SPEC"] == 29
        assert by_suite["GAP"] == 6
        assert by_suite["HPC"] == 1

    def test_rate_mode_table(self):
        specs = rate_mode_specs()
        assert len(specs) == 17
        names = [s.name for s in specs]
        for expected in ("soplex", "libq", "mcf", "nekbone", "pr_twi"):
            assert expected in names

    def test_lookup_and_errors(self):
        assert get_workload("soplex").potential == 2.43
        with pytest.raises(WorkloadError):
            get_workload("not_a_workload")
        with pytest.raises(WorkloadError):
            get_workload("mix1")  # mixes built separately

    def test_main_suite_returns_copy(self):
        suite = main_suite()
        suite.clear()
        assert len(main_suite()) == 21

    def test_scaling(self):
        spec = get_workload("soplex")
        scaled = spec.scaled(1.0 / 128.0)
        assert scaled.footprint_bytes == pytest.approx(
            spec.footprint_bytes / 128, rel=0.01
        )
        assert scaled.mpki == spec.mpki

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec("x", "SPEC", mpki=0, footprint_bytes=1, potential=1)
        with pytest.raises(WorkloadError):
            WorkloadSpec("x", "SPEC", mpki=1, footprint_bytes=1, potential=1,
                         conflict_degree=1)


class TestSyntheticGenerator:
    def _gen(self, name="libq", seed=7, **overrides):
        import dataclasses

        spec = get_workload(name).scaled(1.0 / 512.0)
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
        return SyntheticWorkload(spec, CAPACITY, seed=seed)

    def test_deterministic(self):
        a = self._gen().generate(5000)
        b = self._gen().generate(5000)
        assert a.addrs == b.addrs
        assert bytes(a.writes) == bytes(b.writes)

    def test_seeds_differ(self):
        a = self._gen(seed=1).generate(5000)
        b = self._gen(seed=2).generate(5000)
        assert a.addrs != b.addrs

    def test_write_fraction_near_spec(self):
        trace = self._gen().generate(30_000)
        spec = get_workload("libq")
        observed = trace.write_count / trace.read_count
        assert abs(observed - spec.write_frac) < 0.05

    def test_writebacks_target_recent_lines(self):
        trace = self._gen().generate(5000)
        reads = set()
        for addr, is_write in zip(trace.addrs, trace.writes):
            if is_write:
                assert addr // 64 in reads
            else:
                reads.add(addr // 64)

    def test_conflict_groups_alias_in_cache(self):
        gen = self._gen("soplex")
        trace = gen.generate(30_000)
        base = gen._conflict_base
        conflict_pages = {a // PAGE_SIZE for a in trace.addrs if a >= base}
        assert conflict_pages  # soplex has conflict traffic
        # Pages of one group differ by exactly the capacity.
        groups = {}
        for page in conflict_pages:
            groups.setdefault((page * PAGE_SIZE) % CAPACITY, []).append(page)
        assert any(len(members) >= 2 for members in groups.values())

    def test_spatial_runs_present(self):
        trace = self._gen("libq").generate(10_000)
        sequential = sum(
            1
            for i in range(1, len(trace.addrs))
            if trace.addrs[i] == trace.addrs[i - 1] + 64
        )
        assert sequential / len(trace) > 0.3  # libq streams long runs

    def test_sparse_workload_short_runs(self):
        trace = self._gen("mcf").generate(10_000)
        sequential = sum(
            1
            for i in range(1, len(trace.addrs))
            if trace.addrs[i] == trace.addrs[i - 1] + 64
        )
        assert sequential / len(trace) < 0.3

    def test_addr_base_offset(self):
        import dataclasses

        spec = get_workload("libq").scaled(1.0 / 512.0)
        gen = SyntheticWorkload(spec, CAPACITY, seed=7, addr_base=CAPACITY * 16)
        trace = gen.generate(1000)
        assert all(a >= CAPACITY * 16 for a in trace.addrs)

    def test_addr_base_must_preserve_aliasing(self):
        spec = get_workload("libq").scaled(1.0 / 512.0)
        with pytest.raises(WorkloadError):
            SyntheticWorkload(spec, CAPACITY, addr_base=CAPACITY + 64)

    def test_rejects_bad_length(self):
        with pytest.raises(WorkloadError):
            self._gen().generate(0)


class TestMixes:
    def test_recipes_have_four_members(self):
        assert len(MIX_RECIPES) == 10
        for members in MIX_RECIPES.values():
            assert len(members) == 4

    def test_mix_trace_interleaves_members(self):
        trace = build_mix_trace("mix1", CAPACITY, 8000, seed=3)
        spans = {addr // (CAPACITY * (1 << 16)) for addr in trace.addrs}
        assert len(spans) == 4  # four disjoint member regions

    def test_unknown_mix_rejected(self):
        with pytest.raises(WorkloadError):
            build_mix_trace("mix99", CAPACITY, 1000)

    def test_mix_deterministic(self):
        a = build_mix_trace("mix2", CAPACITY, 4000, seed=5)
        b = build_mix_trace("mix2", CAPACITY, 4000, seed=5)
        assert a.addrs == b.addrs


class TestCyclic:
    def test_conflicting_addresses_alias(self):
        from repro.cache.geometry import CacheGeometry

        addrs = conflicting_addresses(CAPACITY, count=3)
        for ways in (1, 2, 4):
            geometry = CacheGeometry(CAPACITY, ways)
            sets = {geometry.set_index(a) for a in addrs}
            assert len(sets) == 1

    def test_cyclic_trace_shape(self):
        trace = cyclic_trace([0, 64], iterations=5)
        assert len(trace) == 10
        assert trace.addrs == [0, 64] * 5
        assert trace.write_count == 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            cyclic_trace([], 5)
        with pytest.raises(WorkloadError):
            cyclic_trace([0], 0)
        with pytest.raises(WorkloadError):
            conflicting_addresses(CAPACITY, count=0)
