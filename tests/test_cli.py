"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main
from repro.experiments import EXPERIMENT_MODULES


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENT_MODULES:
            assert name in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "4GB" in out
        assert "128 GB/s" in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "table1_lookup_cost"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_run_simulated_experiment_quick(self, capsys):
        assert main(["run", "table6_hitrate", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "PWS+GWS" in out

    def test_run_parallel_with_workload_subset(self, capsys, tmp_path):
        assert main([
            "run", "table6_hitrate", "--accesses", "3000",
            "--workloads", "soplex,libq", "-j", "2",
            "--results-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "PWS+GWS" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "not_an_experiment"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepCli:
    ARGS = ["sweep", "--designs", "direct,accord:2",
            "--workloads", "soplex,libq", "--accesses", "3000"]

    def test_sweep_reports_tables(self, capsys, tmp_path):
        assert main(self.ARGS + ["--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Sweep: hit rate" in out
        assert "speedup over direct-1way" in out
        assert "4 simulated, 0 from cache" in out

    def test_sweep_is_memoized_across_invocations(self, capsys, tmp_path):
        assert main(self.ARGS + ["--results-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--results-dir", str(tmp_path), "-j", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 simulated, 4 from cache" in out

    def test_sweep_csv_export(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        assert main(self.ARGS + ["--results-dir", str(tmp_path / "store"),
                                 "--csv", str(csv_path)]) == 0
        from repro.analysis.export import load_series_csv

        series = load_series_csv(str(csv_path))
        assert "ACCORD 2-way" in series
        assert set(series["ACCORD 2-way"]) == {"soplex", "libq"}

    def test_sweep_rejects_bad_design(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--designs", "bogus:2"])

    def test_sweep_rejects_duplicate_designs(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--designs", "accord:2,accord:2"])

    def test_sweep_phase_csv_export(self, capsys, tmp_path):
        csv_path = tmp_path / "phases.csv"
        assert main(self.ARGS + [
            "--results-dir", str(tmp_path / "store"),
            "--epoch-metrics", "500", "--phase-csv", str(csv_path),
        ]) == 0
        from repro.analysis.export import PHASE_CSV_COLUMNS

        lines = csv_path.read_text().splitlines()
        assert lines[0] == ",".join(PHASE_CSV_COLUMNS)
        assert len(lines) > 1

    def test_phase_csv_requires_epoch_metrics(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--phase-csv", "phases.csv"])

    def test_rejects_nonpositive_epoch_metrics(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--epoch-metrics", "0"])


class TestResilienceCli:
    ARGS = ["sweep", "--designs", "direct,accord:2",
            "--workloads", "soplex,libq", "--accesses", "3000"]

    def test_journal_written_by_default(self, tmp_path):
        assert main(self.ARGS + ["--results-dir", str(tmp_path)]) == 0
        assert (tmp_path / "sweep.journal.jsonl").exists()

    def test_no_journal_skips_writing(self, tmp_path):
        assert main(self.ARGS + ["--results-dir", str(tmp_path),
                                 "--no-journal"]) == 0
        assert not (tmp_path / "sweep.journal.jsonl").exists()

    def test_execution_failure_exits_3(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           f"os_error=9;dir={tmp_path / 'ledger'}")
        code = main(self.ARGS + ["--results-dir", str(tmp_path),
                                 "--retries", "0"])
        assert code == 3
        err = capsys.readouterr().err
        assert "sweep failed" in err
        assert "--resume" in err  # points at the recovery path

    def test_retries_heal_transient_faults(self, monkeypatch, tmp_path,
                                           capsys):
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           f"os_error=2;dir={tmp_path / 'ledger'}")
        assert main(self.ARGS + ["--results-dir", str(tmp_path),
                                 "--retries", "3"]) == 0
        out = capsys.readouterr().out
        assert "4 simulated, 0 from cache" in out
        assert "transient retries" in out

    def test_malformed_fault_plan_exits_2(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "bogus=1")
        with pytest.raises(SystemExit) as info:
            main(self.ARGS)
        assert info.value.code == 2

    def test_rejects_bad_retries_and_timeout(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--retries", "-1"])
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--timeout", "0"])

    def test_resume_replays_journal(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        assert main(self.ARGS + ["--results-dir", str(tmp_path / "store"),
                                 "--journal", str(journal)]) == 0
        capsys.readouterr()
        # --no-store on the resume run proves the journal alone can
        # supply every result.
        assert main(self.ARGS + ["--no-store", "--journal", str(journal),
                                 "--resume"]) == 0
        captured = capsys.readouterr()
        assert "0 simulated, 0 from cache, 4 resumed from journal" \
            in captured.out
        assert "resuming: 4/4" in captured.err

    def test_resume_with_changed_sweep_exits_2(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        assert main(self.ARGS + ["--results-dir", str(tmp_path / "store"),
                                 "--journal", str(journal)]) == 0
        with pytest.raises(SystemExit) as info:
            main(["sweep", "--designs", "direct", "--workloads",
                  "soplex,libq", "--accesses", "3000",
                  "--journal", str(journal), "--resume"])
        assert info.value.code == 2

    def test_resume_without_journal_file_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            main(self.ARGS + ["--journal", str(tmp_path / "ghost.jsonl"),
                              "--resume"])
        assert info.value.code == 2

    def test_resume_conflicts_with_no_journal(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--resume", "--no-journal"])


class TestProfileCli:
    def test_profile_prints_summary(self, capsys):
        assert main(["profile", "soplex", "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Trace profile: soplex" in out

    def test_profile_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["profile", "not_a_workload", "--accesses", "2000"])

    def test_profile_rejects_bad_accesses(self):
        with pytest.raises(SystemExit):
            main(["profile", "soplex", "--accesses", "0"])

    def test_profile_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            main(["profile", "soplex", "--accesses", "2000", "--scale", "2"])
