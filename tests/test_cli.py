"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main
from repro.experiments import EXPERIMENT_MODULES


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENT_MODULES:
            assert name in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "4GB" in out
        assert "128 GB/s" in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "table1_lookup_cost"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_run_simulated_experiment_quick(self, capsys):
        assert main(["run", "table6_hitrate", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "PWS+GWS" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "not_an_experiment"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
