"""Tests for the Simulator, runner helpers and design orchestration."""

import pytest

from repro.core.accord import AccordDesign
from repro.errors import SimulationError, WorkloadError
from repro.params.system import scaled_system
from repro.sim.runner import (
    TraceFactory,
    geometric_mean,
    mean_hit_rate,
    mean_prediction_accuracy,
    run_design,
    run_suite,
    speedups_vs_baseline,
)
from repro.sim.system import Simulator, build_dram_cache
from repro.sim.trace import trace_from_arrays

SMALL_SCALE = 1.0 / 1024.0  # 4MB cache: fast to exercise


def small_config(ways=1):
    return scaled_system(ways=ways, scale=SMALL_SCALE)


class TestSimulator:
    def test_run_produces_consistent_result(self):
        config = small_config()
        simulator = Simulator(config, AccordDesign(kind="direct", ways=1))
        trace = trace_from_arrays(
            "t", [i % 50 * 64 for i in range(2000)], [0] * 2000, 40.0
        )
        result = simulator.run(trace, warmup_fraction=0.25)
        assert result.workload == "t"
        assert result.stats.demand_reads == 1500  # post-warmup only
        assert result.hit_rate > 0.9  # 50 hot lines
        assert result.runtime_ns > 0

    def test_warmup_excluded_from_stats(self):
        config = small_config()
        simulator = Simulator(config, AccordDesign(kind="direct", ways=1))
        # All-distinct trace: every access misses; warmup shaves misses.
        trace = trace_from_arrays(
            "t", [i * 64 for i in range(1000)], [0] * 1000, 40.0
        )
        result = simulator.run(trace, warmup_fraction=0.5)
        assert result.stats.misses == 500

    def test_warmup_validation(self):
        simulator = Simulator(small_config(), AccordDesign(kind="direct", ways=1))
        trace = trace_from_arrays("t", [0], [0], 40.0)
        with pytest.raises(SimulationError):
            simulator.run(trace, warmup_fraction=1.0)

    def test_all_write_trace_rejected(self):
        simulator = Simulator(small_config(), AccordDesign(kind="direct", ways=1))
        trace = trace_from_arrays("t", [0, 64], [1, 1], 40.0)
        with pytest.raises(SimulationError):
            simulator.run(trace, warmup_fraction=0.0)

    def test_speedup_over_requires_same_workload(self):
        config = small_config()
        simulator = Simulator(config, AccordDesign(kind="direct", ways=1))
        t1 = trace_from_arrays("a", [0] * 100, [0] * 100, 40.0)
        t2 = trace_from_arrays("b", [0] * 100, [0] * 100, 40.0)
        r1 = simulator.run(t1, 0.0)
        r2 = Simulator(config, AccordDesign(kind="direct", ways=1)).run(t2, 0.0)
        with pytest.raises(SimulationError):
            r1.speedup_over(r2)

    def test_build_dram_cache_uses_design_ways(self):
        cache = build_dram_cache(AccordDesign(kind="accord", ways=2), small_config())
        assert cache.geometry.ways == 2


class TestRunner:
    def test_run_design_end_to_end(self):
        result = run_design(
            AccordDesign(kind="accord", ways=2),
            "libq",
            config=small_config(2),
            num_accesses=20_000,
        )
        assert 0.0 < result.hit_rate < 1.0
        assert 0.0 < result.prediction_accuracy <= 1.0

    def test_trace_factory_memoizes(self):
        factory = TraceFactory(small_config(), num_accesses=5_000)
        assert factory.trace_for("libq") is factory.trace_for("libq")

    def test_trace_factory_builds_mixes(self):
        factory = TraceFactory(small_config(), num_accesses=4_000)
        trace = factory.trace_for("mix1")
        assert len(trace) > 0

    def test_run_suite_and_aggregates(self):
        suite = ["libq", "sphinx"]
        config = small_config(2)
        factory = TraceFactory(config, num_accesses=20_000)
        base = run_suite(
            AccordDesign(kind="parallel", ways=2), suite,
            config=config, traces=factory, num_accesses=20_000,
        )
        accord = run_suite(
            AccordDesign(kind="accord", ways=2), suite,
            config=config, traces=factory, num_accesses=20_000,
        )
        speedups = speedups_vs_baseline(accord, base)
        assert set(speedups) == set(suite)
        assert 0 < mean_hit_rate(accord) <= 1
        assert 0 < mean_prediction_accuracy(accord) <= 1

    def test_empty_suite_rejected(self):
        with pytest.raises(WorkloadError):
            run_suite(AccordDesign(kind="direct", ways=1), [])

    def test_speedups_require_matching_baseline(self):
        with pytest.raises(WorkloadError):
            speedups_vs_baseline({"a": None}, {})


class TestGeometricMean:
    def test_values(self):
        assert geometric_mean([2.0, 0.5]) == pytest.approx(1.0)
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            geometric_mean([])
        with pytest.raises(WorkloadError):
            geometric_mean([1.0, 0.0])
