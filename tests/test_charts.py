"""Tests for ASCII chart rendering."""

import pytest

from repro.utils.charts import bar_chart, histogram, sparkline


class TestBarChart:
    def test_simple_bars(self):
        out = bar_chart({"a": 1.0, "bb": 2.0}, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a ")
        # The larger value gets the longer bar.
        assert lines[2].count("#") > lines[1].count("#")

    def test_values_printed(self):
        out = bar_chart({"x": 1.2345})
        assert "1.234" in out or "1.235" in out

    def test_diverging_mode(self):
        out = bar_chart({"up": 1.2, "down": 0.8}, baseline=1.0)
        up_line = next(l for l in out.splitlines() if l.startswith("up"))
        down_line = next(l for l in out.splitlines() if l.startswith("down"))
        assert "#" in up_line and "#" not in down_line
        assert "-" in down_line

    def test_diverging_equal_to_baseline(self):
        out = bar_chart({"flat": 1.0}, baseline=1.0)
        assert "#" not in out and "-" not in out.splitlines()[-1].split("|")[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=5)
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})


class TestSparkline:
    def test_monotone(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "@"

    def test_flat(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestHistogram:
    def test_bucketing(self):
        out = histogram([1, 1, 1, 9], bins=2, title="H")
        lines = out.splitlines()
        assert lines[0] == "H"
        assert lines[1].endswith("3")
        assert lines[2].endswith("1")

    def test_single_value(self):
        out = histogram([2.0, 2.0], bins=3)
        assert "2" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([])
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)
