"""Unit tests for Ganged Way-Steering (RIT/RLT)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import RandomReplacement
from repro.cache.storage import TagStore
from repro.core.gws import (
    GangedWayPredictor,
    GangedWaySteering,
    RecentRegionTable,
)
from repro.core.prediction import StaticPreferredPredictor
from repro.core.pws import ProbabilisticWaySteering
from repro.errors import PolicyError
from repro.utils.rng import XorShift64


class TestRecentRegionTable:
    def test_miss_then_hit(self):
        table = RecentRegionTable(entries=4)
        assert table.lookup(10) is None
        table.record(10, 1)
        assert table.lookup(10) == 1
        assert table.hits == 1 and table.misses == 1

    def test_lru_eviction(self):
        table = RecentRegionTable(entries=2)
        table.record(1, 0)
        table.record(2, 1)
        table.record(3, 0)  # evicts region 1
        assert table.lookup(1) is None
        assert table.lookup(2) == 1
        assert table.lookup(3) == 0

    def test_lookup_refreshes_recency(self):
        table = RecentRegionTable(entries=2)
        table.record(1, 0)
        table.record(2, 1)
        table.lookup(1)  # 1 becomes MRU
        table.record(3, 0)  # evicts 2, not 1
        assert table.lookup(1) == 0
        assert table.lookup(2) is None

    def test_update_existing(self):
        table = RecentRegionTable(entries=2)
        table.record(1, 0)
        table.record(1, 1)
        assert table.lookup(1) == 1
        assert len(table) == 1

    def test_storage_paper_number(self):
        # 64 entries x (1 valid + 18 tag + 1 way) = 1280 bits = 160B;
        # RIT + RLT together = 320B (Table IX).
        table = RecentRegionTable(entries=64)
        assert table.storage_bits(2) == 64 * 20

    def test_rejects_zero_entries(self):
        with pytest.raises(PolicyError):
            RecentRegionTable(entries=0)


@pytest.fixture
def geom():
    return CacheGeometry(64 * 1024, 2)  # 512 sets so regions span many sets


class TestGangedSteering:
    def test_region_lines_follow_first_install(self, geom):
        steering = GangedWaySteering(
            geom, fallback=ProbabilisticWaySteering(geom, rng=XorShift64(1))
        )
        store = TagStore(geom)
        replacement = RandomReplacement(XorShift64(2))
        region_base = 0x40000  # 4KB-aligned
        ways = set()
        for line in range(16):
            addr = region_base + line * 64
            set_index, tag = geom.split(addr)
            way = steering.choose_install_way(set_index, tag, addr, store, replacement)
            steering.on_install(set_index, tag, addr, way)
            ways.add(way)
        assert len(ways) == 1  # whole region ganged to one way

    def test_different_regions_can_differ(self, geom):
        steering = GangedWaySteering(
            geom, fallback=ProbabilisticWaySteering(geom, pip=0.5, rng=XorShift64(3))
        )
        store = TagStore(geom)
        replacement = RandomReplacement(XorShift64(2))
        region_ways = set()
        for region in range(64):
            addr = region * 4096
            set_index, tag = geom.split(addr)
            way = steering.choose_install_way(set_index, tag, addr, store, replacement)
            steering.on_install(set_index, tag, addr, way)
            region_ways.add(way)
        assert region_ways == {0, 1}

    def test_storage_totals_320_bytes(self, geom):
        steering = GangedWaySteering(geom)
        predictor = GangedWayPredictor(geom)
        total_bits = steering.storage_bits() + predictor.storage_bits()
        assert total_bits == 2 * 64 * 20  # 320 bytes

    def test_mismatched_fallback_rejected(self, geom):
        other = CacheGeometry(64 * 1024, 4)
        with pytest.raises(PolicyError):
            GangedWaySteering(geom, fallback=ProbabilisticWaySteering(other))


class TestGangedPredictor:
    def test_predicts_last_way_seen(self, geom):
        predictor = GangedWayPredictor(geom)
        addr = 0x8000
        set_index, tag = geom.split(addr)
        predictor.on_access(set_index, tag, addr, way=1, hit=True)
        # Another line of the same 4KB region predicts way 1.
        addr2 = addr + 128
        set2, tag2 = geom.split(addr2)
        assert predictor.predict(set2, tag2, addr2) == 1

    def test_install_updates_rlt(self, geom):
        predictor = GangedWayPredictor(geom)
        addr = 0x8000
        set_index, tag = geom.split(addr)
        predictor.on_install(set_index, tag, addr, way=0)
        assert predictor.predict(set_index, tag, addr + 64) == 0

    def test_falls_back_on_unknown_region(self, geom):
        fallback = StaticPreferredPredictor(geom)
        predictor = GangedWayPredictor(geom, fallback=fallback)
        addr = 0xFF000
        set_index, tag = geom.split(addr)
        assert predictor.predict(set_index, tag, addr) == fallback.predict(
            set_index, tag, addr
        )

    def test_misses_do_not_pollute_rlt(self, geom):
        predictor = GangedWayPredictor(geom)
        addr = 0x8000
        set_index, tag = geom.split(addr)
        predictor.on_access(set_index, tag, addr, way=None, hit=False)
        assert len(predictor.rlt) == 0
