"""Tests for virtual memory translation."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.vm.translation import PageTable


class TestTranslation:
    def test_stable_mapping(self):
        table = PageTable(1 << 20, seed=3)
        first = table.translate(0x1234)
        assert table.translate(0x1234) == first

    def test_offset_preserved(self):
        table = PageTable(1 << 20, seed=3)
        base = table.translate(0x4000)
        assert table.translate(0x4321) == (base & ~0xFFF) | 0x321

    def test_distinct_pages_distinct_frames(self):
        table = PageTable(1 << 22, seed=3)
        frames = {table.translate(vpn * 4096) // 4096 for vpn in range(256)}
        assert len(frames) == 256

    def test_allocation_is_scattered(self):
        # Contiguous virtual pages should not map to contiguous frames.
        table = PageTable(1 << 24, seed=3)
        frames = [table.translate(vpn * 4096) // 4096 for vpn in range(64)]
        deltas = {frames[i + 1] - frames[i] for i in range(63)}
        assert len(deltas) > 10

    def test_deterministic_per_seed(self):
        a = PageTable(1 << 20, seed=7)
        b = PageTable(1 << 20, seed=7)
        for vpn in range(32):
            assert a.translate(vpn * 4096) == b.translate(vpn * 4096)

    def test_different_seeds_differ(self):
        a = PageTable(1 << 22, seed=1)
        b = PageTable(1 << 22, seed=2)
        mappings_a = [a.translate(v * 4096) for v in range(64)]
        mappings_b = [b.translate(v * 4096) for v in range(64)]
        assert mappings_a != mappings_b

    def test_resident_pages(self):
        table = PageTable(1 << 20, seed=3)
        table.translate(0)
        table.translate(4096)
        table.translate(100)  # same page as 0
        assert table.resident_pages() == 2
        assert len(table) == 2


class TestExhaustion:
    def test_fills_exactly_to_capacity(self):
        table = PageTable(16 * 4096, seed=5)
        for vpn in range(16):
            table.translate(vpn * 4096)
        with pytest.raises(SimulationError):
            table.translate(16 * 4096)

    def test_near_full_uses_linear_probe(self):
        table = PageTable(8 * 4096, seed=5)
        frames = {table.translate(vpn * 4096) // 4096 for vpn in range(8)}
        assert frames == set(range(8))


class TestValidation:
    def test_rejects_tiny_memory(self):
        with pytest.raises(ConfigError):
            PageTable(100)

    def test_rejects_unaligned(self):
        with pytest.raises(ConfigError):
            PageTable(4096 + 17)

    def test_rejects_negative_address(self):
        table = PageTable(1 << 20)
        with pytest.raises(SimulationError):
            table.translate(-1)
