"""Tests for the resilience primitives: backoff, claims, quarantine,
and the sweep journal."""

import json

import pytest

from repro.core.accord import AccordDesign
from repro.errors import ConfigError, JournalError
from repro.exec import JobKey
from repro.exec.resilience import (
    BackoffPolicy,
    SweepJournal,
    claim_done,
    clear_claim,
    complete_claim,
    quarantine_entry,
    read_claim,
    write_claim,
)


def key_for(workload="libq", seed=7):
    return JobKey(
        design=AccordDesign(kind="accord", ways=2),
        workload=workload,
        num_accesses=3000,
        warmup=0.3,
        seed=seed,
    )


class TestBackoffPolicy:
    def test_grows_exponentially_and_caps(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, max_delay=0.5, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_bounds_and_determinism(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, max_delay=1.0,
                               jitter=0.5, seed=3)
        for attempt in range(1, 8):
            raw = min(0.1 * 2.0 ** (attempt - 1), 1.0)
            delay = policy.delay(attempt)
            assert raw * 0.5 <= delay <= raw
            assert delay == policy.delay(attempt)  # pure function

    def test_seed_changes_schedule(self):
        a = BackoffPolicy(jitter=1.0, seed=1)
        b = BackoffPolicy(jitter=1.0, seed=2)
        assert a.delay(3) != b.delay(3)

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ConfigError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ConfigError):
            BackoffPolicy(jitter=1.5)


class TestClaims:
    def test_roundtrip(self, tmp_path):
        import os

        write_claim(tmp_path, "abc")
        pid, started = read_claim(tmp_path, "abc")
        assert pid == os.getpid()
        assert started > 0
        assert not claim_done(tmp_path, "abc")
        complete_claim(tmp_path, "abc")
        assert claim_done(tmp_path, "abc")
        clear_claim(tmp_path, "abc")
        assert read_claim(tmp_path, "abc") is None
        assert not claim_done(tmp_path, "abc")

    def test_missing_and_corrupt_claims_read_as_none(self, tmp_path):
        assert read_claim(tmp_path, "nope") is None
        (tmp_path / "bad.started").write_text("garbage", encoding="ascii")
        assert read_claim(tmp_path, "bad") is None

    def test_unwritable_dir_does_not_raise(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way", encoding="utf-8")
        write_claim(blocker / "sub", "abc")  # advisory: silently dropped
        complete_claim(blocker / "sub", "abc")


class TestQuarantine:
    def test_moves_entry_and_writes_why(self, tmp_path):
        entry = tmp_path / "0d" / "entry.npz"
        entry.parent.mkdir()
        entry.write_bytes(b"bad bytes")
        sidecar = entry.with_suffix(".key.json")
        sidecar.write_text("{}", encoding="utf-8")
        moved = quarantine_entry(entry, tmp_path, "corrupt payload",
                                 extras=(sidecar,))
        qdir = tmp_path / "quarantine"
        assert moved == qdir / "entry.npz"
        assert not entry.exists() and not sidecar.exists()
        assert (qdir / "entry.npz").read_bytes() == b"bad bytes"
        assert (qdir / "entry.key.json").exists()
        why = json.loads((qdir / "entry.npz.why").read_text(encoding="utf-8"))
        assert why["reason"] == "corrupt payload"
        assert why["entry"] == "entry.npz"

    def test_missing_entry_is_harmless(self, tmp_path):
        assert quarantine_entry(tmp_path / "ghost", tmp_path, "x") is None


class TestSweepJournal:
    def keys(self):
        return [key_for(w) for w in ("soplex", "libq", "mcf")]

    def test_begin_load_roundtrip(self, tmp_path):
        from repro.exec import execute_job

        path = tmp_path / "sweep.journal.jsonl"
        journal = SweepJournal(path)
        keys = self.keys()
        journal.begin(keys, meta={"designs": "accord:2"})
        result = execute_job(keys[0])
        journal.record_done(keys[0], result)
        journal.record_event("timeout", key=keys[1].digest())

        fresh = SweepJournal(path)
        assert fresh.load() == 1
        assert fresh.header["sweep"] == SweepJournal.sweep_digest(keys)
        assert fresh.header["total"] == 3
        assert fresh.header["meta"]["designs"] == "accord:2"
        assert fresh.lookup(keys[0]) == result.to_dict()
        assert fresh.lookup(keys[1]) is None

    def test_sweep_digest_order_insensitive(self):
        keys = self.keys()
        assert SweepJournal.sweep_digest(keys) == \
            SweepJournal.sweep_digest(list(reversed(keys)))
        assert SweepJournal.sweep_digest(keys) == \
            SweepJournal.sweep_digest(keys + [keys[0]])  # dedup
        assert SweepJournal.sweep_digest(keys) != \
            SweepJournal.sweep_digest(keys[:2])

    def test_torn_tail_line_tolerated(self, tmp_path):
        from repro.exec import execute_job

        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        keys = self.keys()
        journal.begin(keys)
        journal.record_done(keys[0], execute_job(keys[0]))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event":"done","key":"abc","resu')  # crash mid-append
        fresh = SweepJournal(path)
        assert fresh.load() == 1  # torn line skipped, not fatal

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.begin(self.keys())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"event":"note"}\n')
            handle.write('{"event":"note"}\n')
        with pytest.raises(JournalError):
            SweepJournal(path).load()

    def test_missing_file_and_header_raise(self, tmp_path):
        with pytest.raises(JournalError):
            SweepJournal(tmp_path / "ghost.jsonl").load()
        headerless = tmp_path / "h.jsonl"
        headerless.write_text('{"event":"done"}\n', encoding="utf-8")
        with pytest.raises(JournalError):
            SweepJournal(headerless).load()

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"event":"begin","version":999,"sweep":"x","total":0}\n',
            encoding="utf-8",
        )
        with pytest.raises(JournalError):
            SweepJournal(path).load()

    def test_unwritable_journal_warns_once(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way", encoding="utf-8")
        journal = SweepJournal(blocker / "sub" / "j.jsonl")
        with pytest.raises(JournalError):
            journal.begin(self.keys())
        # Appends to an unopenable path degrade to a single warning.
        journal_append = SweepJournal(blocker / "sub" / "j.jsonl")
        with pytest.warns(RuntimeWarning, match="not writable"):
            journal_append.record_event("note")
        journal_append.record_event("note")  # silent after the first
