"""Cross-engine validation tests (interval vs detailed vs scheduled)."""

import pytest

from repro.analysis.validation import (
    ValidationReport,
    validate_hit_latency,
    validate_queueing_growth,
)
from repro.errors import SimulationError
from repro.params.system import scaled_system


@pytest.fixture
def config():
    return scaled_system(ways=1, scale=1.0 / 1024.0)


class TestValidationReport:
    def test_ratio_and_within(self):
        report = ValidationReport("x", 10.0, 8.0)
        assert report.ratio == pytest.approx(1.25)
        assert report.within(1.5)
        assert not report.within(1.1)

    def test_zero_detailed_rejected(self):
        with pytest.raises(SimulationError):
            ValidationReport("x", 1.0, 0.0).ratio


class TestHitLatency:
    def test_engines_agree_within_2x(self, config):
        """The interval model's unloaded hit latency must land within a
        factor of two of the detailed engine's measurement — the two
        make different row-buffer assumptions (closed vs warm), so
        exact agreement is not expected."""
        report = validate_hit_latency(config, num_lines=128)
        assert report.within(2.0)


class TestQueueingGrowth:
    def test_both_models_grow_with_load(self, config):
        reports = validate_queueing_growth(config, requests=800)
        detailed = [r.detailed_value for r in reports]
        interval = [r.interval_value for r in reports]
        # Latency/queueing must rise with offered load in both models.
        assert detailed[0] <= detailed[-1]
        assert interval[0] <= interval[-1]
