"""Tests for the shared-cache multi-core simulator."""

import pytest

from repro.core.accord import AccordDesign
from repro.errors import SimulationError
from repro.params.system import scaled_system
from repro.sim.multicore import MultiCoreSimulator
from repro.sim.trace import trace_from_arrays
from repro.workloads.spec import get_workload
from repro.workloads.synthetic import SyntheticWorkload

SCALE = 1.0 / 1024.0  # 4MB cache


def config(ways=2):
    return scaled_system(ways=ways, scale=SCALE)


def hot_trace(name, base, lines=200, repeats=20, ipa=40.0):
    addrs = [base + (i % lines) * 64 for i in range(lines * repeats)]
    return trace_from_arrays(name, addrs, [0] * len(addrs), ipa)


class TestMultiCore:
    def test_per_core_stats_separate(self):
        sim = MultiCoreSimulator(config(), AccordDesign(kind="accord", ways=2))
        cap = config().dram_cache.capacity_bytes
        result = sim.run(
            [hot_trace("a", 0), hot_trace("b", cap // 4)], warmup_fraction=0.25
        )
        assert result.num_cores == 2
        for stats in result.per_core_stats:
            assert stats.demand_reads == 3000  # 4000 minus 25% warmup
            assert stats.hit_rate > 0.9  # hot sets fit easily

    def test_disjoint_cores_do_not_interfere(self):
        sim = MultiCoreSimulator(config(), AccordDesign(kind="accord", ways=2))
        cap = config().dram_cache.capacity_bytes
        result = sim.run(
            [hot_trace("a", 0), hot_trace("b", cap // 4)], warmup_fraction=0.25
        )
        solo = MultiCoreSimulator(config(), AccordDesign(kind="accord", ways=2))
        solo_result = solo.run([hot_trace("a", 0)], warmup_fraction=0.25)
        assert result.per_core_stats[0].hit_rate == pytest.approx(
            solo_result.per_core_stats[0].hit_rate, abs=0.02
        )

    def test_contention_lowers_hit_rate(self):
        """Working sets that fit alone but not together lose hit-rate."""
        cap = config().dram_cache.capacity_bytes
        total_lines = cap // 64
        hot_lines = int(total_lines * 0.6)  # each fits alone, not together

        def looping(name, base):
            addrs = [base + (i % hot_lines) * 64 for i in range(60_000)]
            return trace_from_arrays(name, addrs, [0] * len(addrs), 40.0)

        shared = MultiCoreSimulator(config(), AccordDesign(kind="accord", ways=2))
        both = shared.run([looping("a", 0), looping("b", cap)],
                          warmup_fraction=0.3)
        alone = MultiCoreSimulator(config(), AccordDesign(kind="accord", ways=2))
        one = alone.run([looping("a", 0)], warmup_fraction=0.3)
        # Core b's range aliases core a's sets (offset = capacity), so
        # the combined 1.2x-capacity working set spills.
        assert both.combined_hit_rate() < one.combined_hit_rate() - 0.03

    def test_weighted_speedup(self):
        cap = config().dram_cache.capacity_bytes
        traces = [hot_trace("a", 0), hot_trace("b", cap // 4)]
        base = MultiCoreSimulator(
            config(), AccordDesign(kind="parallel", ways=2)
        ).run(traces)
        better = MultiCoreSimulator(
            config(), AccordDesign(kind="accord", ways=2)
        ).run(traces)
        ws = better.weighted_speedup_over(base)
        assert ws > 0.9  # sane range; accord shouldn't collapse

    def test_makespan_is_max(self):
        sim = MultiCoreSimulator(config(), AccordDesign(kind="accord", ways=2))
        cap = config().dram_cache.capacity_bytes
        result = sim.run([hot_trace("a", 0), hot_trace("b", cap // 4)])
        assert result.makespan_ns == max(result.per_core_runtime_ns)

    def test_synthetic_mix_runs(self):
        cfg = config()
        cap = cfg.dram_cache.capacity_bytes
        traces = []
        for index, name in enumerate(("libq", "mcf")):
            spec = get_workload(name).scaled(SCALE)
            gen = SyntheticWorkload(
                spec, cap, seed=5, addr_base=index * (1 << 16) * cap
            )
            traces.append(gen.generate(10_000))
        sim = MultiCoreSimulator(cfg, AccordDesign(kind="sws", ways=8, hashes=2))
        result = sim.run(traces, warmup_fraction=0.3)
        assert all(r > 0 for r in result.per_core_runtime_ns)

    def test_validation(self):
        sim = MultiCoreSimulator(config(), AccordDesign(kind="accord", ways=2))
        with pytest.raises(SimulationError):
            sim.run([])
        with pytest.raises(SimulationError):
            sim.run([hot_trace("a", 0)], warmup_fraction=1.0)
        with pytest.raises(SimulationError):
            MultiCoreSimulator(config(), AccordDesign(kind="accord", ways=2), chunk=0)
