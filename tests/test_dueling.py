"""Tests for the set-dueling adaptive-PIP extension."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import RandomReplacement
from repro.cache.storage import TagStore
from repro.core.accord import AccordDesign, make_design
from repro.core.dueling import PSEL_BITS, DuelingPwsSteering
from repro.errors import PolicyError
from repro.utils.rng import XorShift64


@pytest.fixture
def geom():
    return CacheGeometry(64 * 1024, 2)  # 512 sets


class TestLeaderDecode:
    def test_leader_groups_disjoint(self, geom):
        steering = DuelingPwsSteering(geom)
        low = {s for s in range(geom.num_sets) if steering.is_low_leader(s)}
        high = {s for s in range(geom.num_sets) if steering.is_high_leader(s)}
        assert low and high
        assert not (low & high)
        assert len(low) == len(high)  # balanced duel

    def test_most_sets_are_followers(self, geom):
        steering = DuelingPwsSteering(geom)
        leaders = sum(
            steering.is_low_leader(s) or steering.is_high_leader(s)
            for s in range(geom.num_sets)
        )
        assert leaders / geom.num_sets < 0.10


class TestPselDynamics:
    def test_low_leader_misses_push_toward_high(self, geom):
        steering = DuelingPwsSteering(geom)
        low_leader = next(
            s for s in range(geom.num_sets) if steering.is_low_leader(s)
        )
        for _ in range(steering.psel_max):
            steering.observe_miss(low_leader)
        assert steering.psel == 0
        assert not steering.followers_use_low

    def test_high_leader_misses_push_toward_low(self, geom):
        steering = DuelingPwsSteering(geom)
        high_leader = next(
            s for s in range(geom.num_sets) if steering.is_high_leader(s)
        )
        for _ in range(steering.psel_max):
            steering.observe_miss(high_leader)
        assert steering.psel == steering.psel_max
        assert steering.followers_use_low

    def test_followers_ignore_psel_updates(self, geom):
        steering = DuelingPwsSteering(geom)
        follower = next(
            s for s in range(geom.num_sets)
            if not steering.is_low_leader(s) and not steering.is_high_leader(s)
        )
        before = steering.psel
        steering.observe_miss(follower)
        assert steering.psel == before

    def test_current_pip_switches_with_psel(self, geom):
        steering = DuelingPwsSteering(geom, pip_low=0.7, pip_high=0.95)
        follower = 1  # not a leader (leaders are multiples of 32)
        high_leader = next(
            s for s in range(geom.num_sets) if steering.is_high_leader(s)
        )
        steering.psel = steering.psel_max
        assert steering.current_pip(follower) == 0.7
        steering.psel = 0
        assert steering.current_pip(follower) == 0.95
        # Leaders never switch.
        assert steering.current_pip(high_leader) == 0.95


class TestInstallPath:
    def test_installs_stay_in_candidates(self, geom):
        steering = DuelingPwsSteering(geom, rng=XorShift64(4))
        store = TagStore(geom)
        replacement = RandomReplacement(XorShift64(5))
        for tag in range(500):
            way = steering.choose_install_way(1, tag, tag * 4096, store, replacement)
            assert way in (0, 1)

    def test_storage_is_psel_only(self, geom):
        assert DuelingPwsSteering(geom).storage_bits() == PSEL_BITS

    def test_validation(self, geom):
        with pytest.raises(PolicyError):
            DuelingPwsSteering(geom, pip_low=0.9, pip_high=0.8)
        with pytest.raises(PolicyError):
            DuelingPwsSteering(CacheGeometry(2 * 1024, 2))  # too few sets


class TestFactoryIntegration:
    def test_design_builds_and_runs(self, geom):
        cache = make_design(AccordDesign(kind="dueling", ways=2), geom, seed=3)
        for i in range(2000):
            cache.read((i % 300) * 64)
        assert cache.stats.hits > 0
        # GWS tables (320B) + PSEL (10 bits, rounded into the total).
        assert cache.storage_overhead_bits() == 2 * 64 * 20 + PSEL_BITS

    def test_dcp_modes_in_design(self, geom):
        for mode in ("exact", "finite", "none"):
            cache = make_design(
                AccordDesign(kind="accord", ways=2, dcp=mode), geom, seed=3
            )
            cache.read(0x1000)
            assert cache.writeback(0x1000)

    def test_unknown_dcp_mode_rejected(self, geom):
        with pytest.raises(PolicyError):
            make_design(AccordDesign(kind="accord", ways=2, dcp="bogus"), geom)
