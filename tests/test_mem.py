"""Tests for the detailed memory device models (banks, channels, NVM,
scheduler, bandwidth accounting)."""

import pytest

from repro.mem.bank import Bank
from repro.mem.bus import BandwidthAccountant
from repro.mem.channel import Channel
from repro.mem.dram import DramDevice
from repro.mem.nvm import NvmDevice
from repro.mem.scheduler import FrFcfsScheduler
from repro.params.timing import BusConfig, DramTiming, NvmTiming, hbm_bus, nvm_bus


@pytest.fixture
def timing():
    return DramTiming()


class TestBank:
    def test_first_access_is_row_empty(self, timing):
        bank = Bank(timing)
        response = bank.access(5, 0.0)
        assert not response.row_hit
        assert response.ready_ns == pytest.approx(timing.row_empty_ns)
        assert bank.row_empties == 1

    def test_row_hit(self, timing):
        bank = Bank(timing)
        first = bank.access(5, 0.0)
        second = bank.access(5, first.ready_ns)
        assert second.row_hit
        assert second.ready_ns == pytest.approx(first.ready_ns + timing.row_hit_ns)

    def test_row_miss_costs_more(self, timing):
        bank = Bank(timing)
        first = bank.access(5, 0.0)
        second = bank.access(9, first.ready_ns)
        assert not second.row_hit
        assert second.ready_ns - first.ready_ns >= timing.row_miss_ns

    def test_tras_respected(self, timing):
        bank = Bank(timing)
        bank.access(5, 0.0)
        # An immediate row miss cannot precharge before tRAS expires.
        response = bank.access(9, 0.0)
        assert response.ready_ns >= timing.t_ras + timing.row_miss_ns - timing.t_rp

    def test_busy_serialization(self, timing):
        bank = Bank(timing)
        first = bank.access(5, 0.0)
        second = bank.access(5, 0.0)  # arrives while busy
        assert second.ready_ns > first.ready_ns

    def test_row_hit_rate(self, timing):
        bank = Bank(timing)
        now = 0.0
        for _ in range(4):
            now = bank.access(3, now).ready_ns
        assert bank.row_hit_rate() == pytest.approx(3 / 4)

    def test_precharge(self, timing):
        bank = Bank(timing)
        ready = bank.access(5, 0.0).ready_ns
        bank.precharge(ready + timing.t_ras)
        assert bank.open_row == -1


class TestChannel:
    def test_transfer_occupies_bus(self, timing):
        channel = Channel(timing, hbm_bus(), num_banks=2)
        first = channel.access(0, 0, 72, 0.0)
        second = channel.access(1, 0, 72, 0.0)  # different bank, shared bus
        assert second.ready_ns > first.ready_ns
        assert channel.bytes_transferred == 144

    def test_bad_bank_rejected(self, timing):
        channel = Channel(timing, hbm_bus(), num_banks=2)
        with pytest.raises(Exception):
            channel.access(5, 0, 72, 0.0)


class TestDramDevice:
    def test_ways_share_row(self, timing):
        device = DramDevice(timing, hbm_bus())
        first = device.access_set(0, 1, 0.0)
        second = device.access_set(0, 1, first.ready_ns)
        assert second.row_hit  # same set -> same row buffer

    def test_far_sets_use_different_channels(self, timing):
        device = DramDevice(timing, hbm_bus())
        device.access_set(0, 1, 0.0)
        device.access_set(32, 1, 0.0)  # next row group -> next channel
        busy = [c.bus_busy_until_ns for c in device.channels]
        assert sum(1 for b in busy if b > 0) == 2

    def test_multi_line_transfer(self, timing):
        device = DramDevice(timing, hbm_bus())
        one = device.access_set(0, 1, 0.0).ready_ns
        device2 = DramDevice(timing, hbm_bus())
        four = device2.access_set(0, 4, 0.0).ready_ns
        assert four > one


class TestNvmDevice:
    def test_read_write_latencies(self):
        device = NvmDevice(NvmTiming(), nvm_bus())
        read = device.read_line(0, 0.0)
        assert read.ready_ns >= NvmTiming().read_ns
        write = device.write_line(64, 0.0)
        assert write.ready_ns - 0.0 >= NvmTiming().write_ns
        assert device.reads == 1 and device.writes == 1

    def test_channel_interleave(self):
        device = NvmDevice(NvmTiming(), nvm_bus())
        device.read_line(0, 0.0)
        device.read_line(64, 0.0)  # adjacent line -> other channel
        assert device.channels[0].reads == 1
        assert device.channels[1].reads == 1


class TestScheduler:
    def test_fcfs_within_class(self):
        scheduler = FrFcfsScheduler(capacity=8)
        scheduler.enqueue("a", 0.0, (0, 0), row=1)
        scheduler.enqueue("b", 1.0, (0, 0), row=1)
        assert scheduler.pop_next(lambda key: -1) == "a"

    def test_row_hit_first(self):
        scheduler = FrFcfsScheduler(capacity=8)
        scheduler.enqueue("miss", 0.0, (0, 0), row=1)
        scheduler.enqueue("hit", 1.0, (0, 0), row=7)
        assert scheduler.pop_next(lambda key: 7) == "hit"

    def test_capacity(self):
        scheduler = FrFcfsScheduler(capacity=1)
        scheduler.enqueue("a", 0.0, (0, 0), row=1)
        assert scheduler.full
        with pytest.raises(OverflowError):
            scheduler.enqueue("b", 0.0, (0, 0), row=1)

    def test_empty_pop(self):
        assert FrFcfsScheduler().pop_next(lambda key: -1) is None

    def test_oldest_arrival(self):
        scheduler = FrFcfsScheduler()
        assert scheduler.oldest_arrival() is None
        scheduler.enqueue("a", 5.0, (0, 0), row=1)
        scheduler.enqueue("b", 3.0, (0, 0), row=1)
        assert scheduler.oldest_arrival() == 3.0


class TestBandwidthAccountant:
    def test_classes_accumulate(self):
        accountant = BandwidthAccountant(hbm_bus())
        accountant.add("reads", 720)
        accountant.add("reads", 72)
        accountant.add("fills", 72)
        assert accountant.total_bytes == 864
        assert accountant.snapshot() == {"reads": 792, "fills": 72}

    def test_utilization(self):
        accountant = BandwidthAccountant(hbm_bus())
        # 128 GB/s aggregate: 128 bytes per ns.
        accountant.add("x", 1280)
        assert accountant.utilization(10.0) == pytest.approx(1.0)

    def test_queueing_monotone(self):
        accountant = BandwidthAccountant(hbm_bus())
        accountant.add("x", 1000)
        low = accountant.queueing_delay_ns(1000.0, 4.5)
        high = accountant.queueing_delay_ns(10.0, 4.5)
        assert high > low

    def test_rejects_bad_input(self):
        accountant = BandwidthAccountant(hbm_bus())
        with pytest.raises(ValueError):
            accountant.add("x", -1)
        with pytest.raises(ValueError):
            accountant.utilization(0.0)

    def test_reset(self):
        accountant = BandwidthAccountant(hbm_bus())
        accountant.add("x", 10)
        accountant.reset()
        assert accountant.total_bytes == 0


class TestBusConfig:
    def test_paper_bandwidths(self):
        assert hbm_bus().aggregate_bandwidth_gbps == pytest.approx(128.0)
        assert nvm_bus().aggregate_bandwidth_gbps == pytest.approx(32.0)

    def test_sustainable_below_peak(self):
        assert hbm_bus().sustainable_bandwidth_gbps < hbm_bus().aggregate_bandwidth_gbps

    def test_transfer_time(self):
        bus = hbm_bus()  # 16 B/ns per channel
        assert bus.transfer_ns(72) == pytest.approx(72 / 32.0 * 2.0)

    def test_validation(self):
        with pytest.raises(Exception):
            BusConfig(channels=0, bus_bits=64, frequency_mhz=100)
        with pytest.raises(Exception):
            BusConfig(channels=1, bus_bits=63, frequency_mhz=100)
        with pytest.raises(Exception):
            BusConfig(channels=1, bus_bits=64, frequency_mhz=100, efficiency=1.5)
