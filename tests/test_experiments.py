"""Smoke + invariant tests for every experiment module (quick settings).

Each experiment's ``run()`` must produce a non-empty report; the cheap
analytic experiments additionally assert paper-exact content.
"""

import pytest

from repro.experiments import EXPERIMENT_MODULES
from repro.experiments.common import Settings, SuiteRunner, baseline_design


def quick_settings():
    return Settings().quick()


class TestAnalyticExperiments:
    def test_table1(self):
        from repro.experiments import table1_lookup_cost

        report = table1_lookup_cost.run(ways=8)
        assert "Parallel Lookup (8-way)" in report
        assert "8 transfer" in report

    def test_table9(self):
        from repro.experiments import table9_storage

        report = table9_storage.run()
        assert "320 Bytes" in report
        assert "0 Bytes" in report

    def test_fig6_small(self):
        from repro.experiments import fig6_cyclic

        report = fig6_cyclic.run(trials=4)
        assert "PIP=50%" in report
        assert "128" in report


class TestModuleRegistry:
    def test_all_modules_importable(self):
        import importlib

        for name in EXPERIMENT_MODULES:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert hasattr(module, "run")
            assert hasattr(module, "main")

    def test_registry_complete(self):
        assert len(EXPERIMENT_MODULES) == 18


@pytest.mark.slow
class TestQuickRuns:
    """Each simulation-backed experiment runs end-to-end on the quick
    configuration. These take a few seconds each."""

    def test_fig1(self):
        from repro.experiments import fig1_associativity

        report = fig1_associativity.run(quick_settings())
        assert "8-way" in report

    def test_table5(self):
        from repro.experiments import table5_pip

        report = table5_pip.run(quick_settings())
        assert "PIP=85%" in report
        assert "Direct-Mapped (PIP=100%)" in report

    def test_fig7(self):
        from repro.experiments import fig7_accuracy

        report = fig7_accuracy.run(quick_settings())
        assert "PWS+GWS" in report

    def test_table6(self):
        from repro.experiments import table6_hitrate

        report = table6_hitrate.run(quick_settings())
        assert "PWS+GWS" in report

    def test_fig10(self):
        from repro.experiments import fig10_speedup_2way

        report = fig10_speedup_2way.run(quick_settings())
        assert "Perfect WP" in report
        assert "Gmean" in report

    def test_table7(self):
        from repro.experiments import table7_sws_hitrate

        report = table7_sws_hitrate.run(quick_settings())
        assert "SWS (8,2-way)" in report

    def test_fig13(self):
        from repro.experiments import fig13_sws_speedup

        report = fig13_sws_speedup.run(quick_settings())
        assert "ACCORD SWS(8,2)" in report

    def test_fig12_quick_suite(self):
        from repro.experiments import fig12_all_workloads

        report = fig12_all_workloads.run(quick_settings())
        assert "worst-case" in report

    def test_table2(self):
        from repro.experiments import table2_predictor_storage

        report = table2_predictor_storage.run(quick_settings())
        assert "32MB" in report  # partial-tag at 4GB
        assert "4MB" in report  # MRU at 4GB

    def test_table10(self):
        from repro.experiments import table10_predictors

        report = table10_predictors.run(quick_settings())
        assert "N/A" in report  # CA-cache has no 4/8-way variant
        assert "320 bytes" in report

    def test_fig14(self):
        from repro.experiments import fig14_predictor_speedup

        report = fig14_predictor_speedup.run(quick_settings())
        assert "CA-Cache (0B)" in report

    def test_fig15(self):
        from repro.experiments import fig15_energy

        report = fig15_energy.run(quick_settings())
        assert "EDP" in report

    def test_table4(self):
        from repro.experiments import table4_workloads

        report = table4_workloads.run(quick_settings())
        assert "soplex" in report

    def test_table8(self):
        from repro.experiments import table8_cache_size

        settings = quick_settings()
        report = table8_cache_size.run(settings)
        assert "4.0GB" in report

    def test_ablation_replacement(self):
        from repro.experiments import ablations

        report = ablations.run(quick_settings(), which=["replacement"])
        assert "lru" in report

    def test_ablation_sws_hashes(self):
        from repro.experiments import ablations

        report = ablations.run(quick_settings(), which=["sws-hashes"])
        assert "SWS(8,1)" in report and "SWS(8,4)" in report


class TestSuiteRunnerMachinery:
    def test_memoizes_runs(self):
        settings = quick_settings()
        settings.suite = ["sphinx"]
        settings.num_accesses = 10_000
        runner = SuiteRunner(settings)
        first = runner.run("direct", baseline_design())
        second = runner.run("direct", baseline_design())
        assert first is second

    def test_traces_shared_across_designs(self):
        settings = quick_settings()
        settings.suite = ["sphinx"]
        settings.num_accesses = 10_000
        runner = SuiteRunner(settings)
        trace_before = runner.traces.trace_for("sphinx")
        runner.run("direct", baseline_design())
        assert runner.traces.trace_for("sphinx") is trace_before
