"""Batched sweep execution: packing, sharing, and per-job guarantees.

The batching layer packs same-trace jobs into shared-trace worker
tasks (fused multi-config kernel where signatures allow) while keeping
every caller-visible artifact — results, store entries, journal lines,
progress — at per-:class:`JobKey` granularity. These tests pin both
halves: bit-identical results across the batched and per-job paths
over the full heterogeneous :data:`BENCH_DESIGNS` grid, and the
resource story (one step-plan build and one shared-memory segment per
trace, released on shutdown, surviving pool rebuilds).
"""

import pytest

from repro.core.accord import AccordDesign
from repro.exec import BackoffPolicy, Executor, JobKey, SweepJournal
from repro.exec.batching import (
    BatchTask,
    batch_group,
    plan_batches,
    trace_key_for,
)
from repro.exec.faults import FAULT_PLAN_ENV
from repro.sim.bench import BENCH_DESIGNS

ACCESSES = 3000

SWEEP = tuple(
    AccordDesign(kind="pws", ways=2, pip=0.2 + 0.05 * i) for i in range(12)
)


def sweep_keys(num=12, workload="soplex", **kwargs):
    return [
        JobKey(
            design=design, workload=workload, num_accesses=ACCESSES,
            warmup=0.3, seed=7, **kwargs,
        )
        for design in SWEEP[:num]
    ]


def bench_keys(workload="soplex"):
    return [
        JobKey(
            design=design, workload=workload, num_accesses=ACCESSES,
            warmup=0.3, seed=7,
        )
        for design in BENCH_DESIGNS
    ]


def fast_backoff():
    return BackoffPolicy(base=0.01, max_delay=0.05)


class TestBatchPlanner:
    def test_same_trace_same_geometry_packs(self):
        items = plan_batches(sweep_keys(12))
        assert len(items) == 1
        (task,) = items
        assert isinstance(task, BatchTask)
        assert len(task.jobs) == 12

    def test_chunking_respects_batch_size(self):
        items = plan_batches(sweep_keys(12), batch_size=8)
        sizes = sorted(len(t.jobs) for t in items)
        assert sizes == [4, 8]

    def test_singletons_stay_plain_keys(self):
        keys = sweep_keys(2) + [
            JobKey(
                design=SWEEP[0], workload="mcf", num_accesses=ACCESSES,
                warmup=0.3, seed=7,
            )
        ]
        items = plan_batches(keys)
        batches = [t for t in items if isinstance(t, BatchTask)]
        plain = [t for t in items if not isinstance(t, BatchTask)]
        assert len(batches) == 1 and len(batches[0].jobs) == 2
        assert len(plain) == 1 and plain[0].workload == "mcf"

    def test_group_splits_on_trace_and_geometry(self):
        base = dict(num_accesses=ACCESSES, warmup=0.3, seed=7)
        same = JobKey(design=SWEEP[0], workload="soplex", **base)
        twin = JobKey(design=SWEEP[1], workload="soplex", **base)
        other_trace = JobKey(design=SWEEP[0], workload="mcf", **base)
        other_ways = JobKey(
            design=AccordDesign(kind="unbiased", ways=4),
            workload="soplex", **base,
        )
        other_epoch = JobKey(
            design=SWEEP[0], workload="soplex", epoch=500, **base
        )
        assert batch_group(same) == batch_group(twin)
        assert batch_group(same) != batch_group(other_trace)
        assert batch_group(same) != batch_group(other_ways)
        assert batch_group(same) != batch_group(other_epoch)


class TestBatchedEquivalence:
    """The acceptance property: batch=True changes wall-clock only."""

    @pytest.fixture(scope="class")
    def per_job(self):
        results = Executor(jobs=1, batch=False).run(bench_keys())
        return {k: r.to_dict() for k, r in results.items()}

    def test_all_bench_designs_bit_identical_serial(self, per_job):
        ex = Executor(jobs=1, batch=True)
        resolved = ex.run(bench_keys())
        assert {k: r.to_dict() for k, r in resolved.items()} == per_job
        assert ex.stats.batches >= 1

    def test_all_bench_designs_bit_identical_parallel(self, per_job):
        ex = Executor(jobs=2, batch=True, backoff=fast_backoff())
        resolved = ex.run(bench_keys())
        assert {k: r.to_dict() for k, r in resolved.items()} == per_job
        assert ex.stats.batches >= 1

    def test_phase_metrics_bit_identical(self):
        keys = sweep_keys(6, epoch=500)
        batched = Executor(jobs=1, batch=True).run(keys)
        solo = Executor(jobs=1, batch=False).run(keys)
        for key in keys:
            assert batched[key].to_dict() == solo[key].to_dict()
            assert (
                batched[key].phases.to_dict() == solo[key].phases.to_dict()
            )

    def test_store_entries_byte_identical(self, tmp_path, per_job):
        from repro.exec import ResultStore

        batched_store = ResultStore(tmp_path / "batched")
        solo_store = ResultStore(tmp_path / "solo")
        keys = bench_keys()
        Executor(jobs=1, batch=True, store=batched_store).run(keys)
        Executor(jobs=1, batch=False, store=solo_store).run(keys)
        for key in keys:
            a = batched_store.path_for(key)
            b = solo_store.path_for(key)
            assert a.read_bytes() == b.read_bytes()


class TestPlanMemoReuse:
    def test_one_plan_build_per_trace(self):
        from repro.sim.engines import vector

        keys = sweep_keys(12, workload="sphinx")
        Executor(jobs=1, batch=True).run(keys)  # warm the trace memo
        before = vector.plan_build_count()
        Executor(jobs=1, batch=True).run(keys)
        assert vector.plan_build_count() == before  # memo hit, zero builds

    def test_fused_pass_covers_the_batch(self):
        from repro.sim.engines import multi

        keys = sweep_keys(12)
        passes, configs = multi.fused_pass_count()
        Executor(jobs=1, batch=True).run(keys)
        after_passes, after_configs = multi.fused_pass_count()
        assert after_passes == passes + 1
        assert after_configs == configs + 12


class TestSharedMemorySegments:
    def _segment_gone(self, name):
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            return True
        shm.close()
        return False

    def test_one_segment_per_trace_released_after_run(self):
        from repro.exec.batching import _segment_name

        keys = sweep_keys(12)
        token = trace_key_for(keys[0]).digest()
        ex = Executor(jobs=2, batch=True, backoff=fast_backoff())
        ex.run(keys)
        # transient executor: the run tears down pool and segments
        assert ex._segments == {}
        assert self._segment_gone(_segment_name(token))

    def test_persistent_executor_releases_on_shutdown(self):
        from repro.exec.batching import _segment_name

        keys = sweep_keys(12)
        token = trace_key_for(keys[0]).digest()
        with Executor(jobs=2, batch=True, backoff=fast_backoff()) as ex:
            ex.run(keys)
            assert list(ex._segments) == [token]
        assert ex._segments == {}
        assert self._segment_gone(_segment_name(token))

    def test_no_leak_across_pool_rebuild(self, tmp_path, monkeypatch):
        from repro.exec.batching import _segment_name

        monkeypatch.setenv(
            FAULT_PLAN_ENV, f"crash=1;dir={tmp_path / 'ledger'}"
        )
        keys = sweep_keys(12)
        token = trace_key_for(keys[0]).digest()
        ex = Executor(jobs=2, batch=True, retries=3, backoff=fast_backoff())
        resolved = ex.run(keys)
        assert ex.stats.pool_breaks >= 1  # the crash really happened
        assert len(resolved) == len(keys)
        assert ex._segments == {}
        assert self._segment_gone(_segment_name(token))


class TestProgressGranularity:
    def test_progress_counts_jobkeys_not_tasks(self):
        events = []
        keys = sweep_keys(12)
        ex = Executor(
            jobs=1, batch=True,
            progress=lambda done, total, key, source: events.append(
                (done, total, key, source)
            ),
        )
        ex.run(keys)
        assert len(events) == len(keys)
        assert [e[0] for e in events] == list(range(1, len(keys) + 1))
        assert all(e[1] == len(keys) for e in events)
        assert {e[2] for e in events} == set(keys)
        assert all(e[3] == "run" for e in events)


class TestResumeMidBatch:
    def test_crash_mid_batch_keeps_per_job_journal(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            FAULT_PLAN_ENV, f"crash=1;dir={tmp_path / 'ledger'}"
        )
        keys = sweep_keys(12)
        path = tmp_path / "sweep.journal.jsonl"
        journal = SweepJournal(path)
        journal.begin(keys)
        ex = Executor(
            jobs=2, batch=True, retries=3, journal=journal,
            backoff=fast_backoff(),
        )
        resolved = ex.run(keys)
        assert ex.stats.pool_breaks >= 1

        # The journal recorded every job individually; a resume replays
        # all of them and executes nothing.
        reloaded = SweepJournal(path)
        assert reloaded.load() == len(keys)
        resume = Executor(jobs=1, batch=True, journal=reloaded)
        replayed = resume.run(keys)
        assert resume.stats.resumed == len(keys)
        assert resume.stats.executed == 0
        assert {k: r.to_dict() for k, r in replayed.items()} == {
            k: r.to_dict() for k, r in resolved.items()
        }

    def test_interrupted_batched_sweep_resumes_the_rest(self, tmp_path):
        keys = sweep_keys(12)
        path = tmp_path / "sweep.journal.jsonl"
        first = SweepJournal(path)
        first.begin(keys)
        Executor(jobs=1, batch=True, journal=first).run(keys[:5])

        second = SweepJournal(path)
        assert second.load() == 5
        ex = Executor(jobs=1, batch=True, journal=second)
        resolved = ex.run(keys)
        assert ex.stats.resumed == 5
        assert ex.stats.executed == len(keys) - 5
        solo = Executor(jobs=1, batch=False).run(keys)
        assert {k: r.to_dict() for k, r in resolved.items()} == {
            k: r.to_dict() for k, r in solo.items()
        }
