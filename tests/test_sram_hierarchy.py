"""Tests for the SRAM cache models and the 4-level hierarchy glue."""

import pytest

from repro.cache.dram_cache import DramCache
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.lookup import SerialLookup
from repro.cache.sram import SramCache
from repro.core.steering import DirectMappedSteering
from repro.errors import PolicyError


class TestSramCache:
    def test_hit_after_fill(self):
        cache = SramCache(CacheGeometry(4 * 1024, 4))
        assert not cache.access(0x100).hit
        assert cache.access(0x100).hit
        assert cache.hit_rate() == 0.5

    def test_lru_eviction_order(self):
        geometry = CacheGeometry(2 * 64 * 2, 2)  # 2 sets x 2 ways
        cache = SramCache(geometry)
        span = geometry.way_span_bytes()
        a, b, c = 0, span, 2 * span  # same set
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is MRU
        cache.access(c)  # evicts b (LRU)
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_dirty_eviction_returns_victim(self):
        geometry = CacheGeometry(2 * 64 * 2, 2)
        cache = SramCache(geometry)
        span = geometry.way_span_bytes()
        cache.access(0, is_write=True)
        cache.access(span)
        result = cache.access(2 * span)  # evicts dirty line 0
        assert result.evicted_dirty_addr == 0
        assert cache.writebacks_out == 1

    def test_clean_eviction_no_victim(self):
        geometry = CacheGeometry(2 * 64 * 2, 2)
        cache = SramCache(geometry)
        span = geometry.way_span_bytes()
        cache.access(0)
        cache.access(span)
        result = cache.access(2 * span)
        assert result.evicted_dirty_addr is None

    def test_write_hit_sets_dirty(self):
        geometry = CacheGeometry(2 * 64 * 2, 2)
        cache = SramCache(geometry)
        span = geometry.way_span_bytes()
        cache.access(0)
        cache.access(0, is_write=True)  # hit-write marks dirty
        cache.access(span)
        result = cache.access(2 * span)
        assert result.evicted_dirty_addr == 0

    def test_mpki(self):
        cache = SramCache(CacheGeometry(4 * 1024, 4))
        for i in range(100):
            cache.access(i * 64 * 64)  # all misses (distinct sets mostly)
        assert cache.mpki(100_000) == pytest.approx(1000.0 * cache.misses / 100_000)
        with pytest.raises(PolicyError):
            cache.mpki(0)


class TestHierarchy:
    def _dram_cache(self):
        geometry = CacheGeometry(1 * 1024 * 1024, 1)
        return DramCache(
            geometry,
            lookup=SerialLookup(),
            steering=DirectMappedSteering(geometry),
            predictor=None,
        )

    def test_filtering(self):
        hierarchy = CacheHierarchy(self._dram_cache())
        for _ in range(10):
            hierarchy.access(0x1000)
        stats = hierarchy.stats
        assert stats.cpu_accesses == 10
        assert stats.l1_hits == 9  # first access misses everywhere
        assert hierarchy.dram_cache.stats.demand_reads == 1

    def test_l3_miss_reaches_dram_cache(self):
        hierarchy = CacheHierarchy(self._dram_cache())
        # Stream far more distinct lines than L1/L2 capacity.
        for i in range(3000):
            hierarchy.access(i * 64)
        assert hierarchy.stats.dram_cache_reads > 0
        assert hierarchy.stats.dram_cache_reads == hierarchy.dram_cache.stats.demand_reads

    def test_dirty_l3_eviction_becomes_writeback(self):
        # Tiny L3 to force dirty evictions quickly.
        hierarchy = CacheHierarchy(
            self._dram_cache(),
            l1_geometry=CacheGeometry(2 * 64 * 2, 2),
            l2_geometry=CacheGeometry(4 * 64 * 2, 2),
            l3_geometry=CacheGeometry(8 * 64 * 2, 2),
        )
        for i in range(500):
            hierarchy.access(i * 64, is_write=True)
        assert hierarchy.stats.dram_cache_writebacks > 0
        assert hierarchy.dram_cache.stats.writebacks_in == (
            hierarchy.stats.dram_cache_writebacks
        )

    def test_l3_miss_rate(self):
        hierarchy = CacheHierarchy(self._dram_cache())
        for i in range(1000):
            hierarchy.access(i * 64 * 64)
        assert 0.0 <= hierarchy.l3_miss_rate() <= 1.0
