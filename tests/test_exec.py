"""Tests for the sweep engine: job keys, result store, executor."""

import json

import pytest

from repro.core.accord import AccordDesign
from repro.errors import ConfigError, ReproError
from repro.exec import (
    Executor,
    JobKey,
    ResultStore,
    execute_job,
    parse_design_spec,
)
from repro.sim.system import RunResult

ACCESSES = 3000  # enough post-warmup demand reads, small enough to be fast


def key_for(workload="libq", design=None, **overrides):
    design = design or AccordDesign(kind="accord", ways=2)
    kwargs = dict(num_accesses=ACCESSES, warmup=0.3, seed=7)
    kwargs.update(overrides)
    return JobKey(design=design, workload=workload, **kwargs)


class TestJobKey:
    def test_digest_is_stable(self):
        assert key_for().digest() == key_for().digest()

    @pytest.mark.parametrize("change", [
        {"seed": 8},
        {"num_accesses": ACCESSES + 1},
        {"scale": 1.0 / 256.0},
        {"warmup": 0.4},
        {"footprint_scale": 1.0 / 64.0},
    ])
    def test_digest_invalidates_on_knob_change(self, change):
        assert key_for(**change).digest() != key_for().digest()

    def test_digest_invalidates_on_design_change(self):
        other = AccordDesign(kind="accord", ways=2, pip=0.9)
        assert key_for(design=other).digest() != key_for().digest()

    def test_label_is_cosmetic(self):
        labelled = AccordDesign(kind="accord", ways=2, label="fancy name")
        assert key_for(design=labelled).digest() == key_for().digest()

    def test_footprint_scale_defaults_to_scale(self):
        key = key_for(scale=1.0 / 64.0)
        assert key.footprint_scale == 1.0 / 64.0

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            key_for(num_accesses=0)
        with pytest.raises(ConfigError):
            key_for(warmup=1.0)
        with pytest.raises(ConfigError):
            key_for(scale=0.0)


class TestRunResultRoundTrip:
    def test_to_from_dict(self):
        result = execute_job(key_for())
        clone = RunResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()
        assert clone.hit_rate == result.hit_rate
        assert clone.prediction_accuracy == result.prediction_accuracy
        assert clone.runtime_ns == result.runtime_ns
        assert clone.design == result.design
        assert clone.stats.extras == result.stats.extras

    def test_survives_json(self):
        result = execute_job(key_for())
        clone = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.to_dict() == result.to_dict()

    def test_malformed_rejected(self):
        with pytest.raises(ReproError):
            RunResult.from_dict({"workload": "libq"})
        good = execute_job(key_for()).to_dict()
        good["timing"]["not_a_field"] = 1.0
        with pytest.raises(ReproError):
            RunResult.from_dict(good)


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = key_for()
        assert store.get(key) is None
        result = execute_job(key)
        store.put(key, result)
        assert key in store
        assert len(store) == 1
        assert store.get(key).to_dict() == result.to_dict()

    def test_knob_change_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        key = key_for()
        store.put(key, execute_job(key))
        assert store.get(key_for(seed=8)) is None
        assert store.get(key_for(num_accesses=ACCESSES + 1)) is None
        assert store.get(key_for(scale=1.0 / 256.0)) is None

    def test_corrupt_entry_discarded_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        key = key_for()
        store.put(key, execute_job(key))
        path = store.path_for(key)
        path.write_text("{ not json", encoding="utf-8")
        assert store.get(key) is None
        assert not path.exists()  # discarded

    def test_tampered_key_discarded(self, tmp_path):
        store = ResultStore(tmp_path)
        key = key_for()
        store.put(key, execute_job(key))
        path = store.path_for(key)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["key"]["seed"] = 99
        path.write_text(json.dumps(record), encoding="utf-8")
        assert store.get(key) is None
        assert not path.exists()

    def test_unwritable_store_degrades(self, tmp_path):
        # A store rooted under a *file* can never be written (even by
        # root, unlike a chmod'd directory).
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way", encoding="utf-8")
        store = ResultStore(blocker / "sub")
        key = key_for()
        result = execute_job(key)
        with pytest.warns(RuntimeWarning):
            store.put(key, result)
        store.put(key, result)  # subsequent puts are silent no-ops
        assert store.get(key) is None
        # Every swallowed write is surfaced as a stat, not just the
        # first (warned-about) one.
        assert store.stats.degraded_writes == 2

    def test_corrupt_entry_quarantined_with_reason(self, tmp_path):
        store = ResultStore(tmp_path)
        key = key_for()
        store.put(key, execute_job(key))
        path = store.path_for(key)
        path.write_text("{ not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.get(key) is None
        assert store.stats.quarantined == 1
        qdir = tmp_path / "quarantine"
        assert (qdir / path.name).read_text(encoding="utf-8") == "{ not json"
        why = json.loads((qdir / f"{path.name}.why").read_text("utf-8"))
        assert "unreadable" in why["reason"]
        assert len(store) == 0  # the quarantine shard is not an entry

    def test_mismatched_schema_entry_quarantined_and_rerun(self, tmp_path):
        # An entry whose result no longer matches the RunResult schema
        # (e.g. written by a different version) must be quarantined and
        # the job re-run, never crash or serve garbage.
        store = ResultStore(tmp_path)
        key = key_for()
        fresh = execute_job(key)
        store.put(key, fresh)
        path = store.path_for(key)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["result"]["timing"]["not_a_field"] = 1.0
        path.write_text(json.dumps(record), encoding="utf-8")

        ex = Executor(jobs=1, store=store)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            results = ex.run([key])
        assert ex.stats.executed == 1 and ex.stats.cached == 0
        assert store.stats.quarantined == 1
        assert results[key].to_dict() == fresh.to_dict()
        assert store.get(key) is not None  # re-run result was re-stored

    def test_stale_schema_version_is_quarantined_miss(self, tmp_path):
        # An entry written under an older RESULT_SCHEMA_VERSION (its
        # payload may even still parse) must be a miss, never trusted.
        from repro.exec.jobs import RESULT_SCHEMA_VERSION

        store = ResultStore(tmp_path)
        key = key_for()
        store.put(key, execute_job(key))
        path = store.path_for(key)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["schema"] = RESULT_SCHEMA_VERSION - 1
        path.write_text(json.dumps(record), encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="stale result schema"):
            assert store.get(key) is None
        assert store.stats.quarantined == 1
        qdir = tmp_path / "quarantine"
        why = json.loads((qdir / f"{path.name}.why").read_text("utf-8"))
        assert "stale result schema" in why["reason"]


class TestExecutorLifecycle:
    """start()/shutdown() for long-lived owners (the sweep service)."""

    def keys(self):
        return [key_for(workload=w) for w in ("soplex", "libq", "mcf")]

    def test_transient_run_still_tears_down_pool(self):
        ex = Executor(jobs=2)
        results = ex.run(self.keys())
        assert len(results) == 3
        assert ex._pool is None  # one-shot callers keep old semantics

    def test_persistent_pool_reused_across_runs(self):
        ex = Executor(jobs=2)
        assert ex.start() is ex
        ex.start()  # idempotent
        try:
            first = ex.run(self.keys())
            pool = ex._pool
            assert pool is not None
            second = ex.run(self.keys())
            assert ex._pool is pool  # same pool, not rebuilt per run
            for key, result in first.items():
                assert second[key].to_dict() == result.to_dict()
        finally:
            ex.shutdown()
        assert ex._pool is None
        ex.shutdown()  # idempotent, safe to repeat

    def test_usable_again_after_shutdown(self):
        ex = Executor(jobs=2).start()
        baseline = ex.run(self.keys())
        ex.shutdown()
        again = ex.run(self.keys())  # rebuilds the pool transparently
        assert ex._pool is not None
        ex.shutdown()
        for key, result in baseline.items():
            assert again[key].to_dict() == result.to_dict()

    def test_context_manager(self):
        with Executor(jobs=2) as ex:
            ex.run(self.keys())
            assert ex._pool is not None
        assert ex._pool is None


class TestExecutor:
    DESIGNS = (
        AccordDesign(kind="direct", ways=1),
        AccordDesign(kind="accord", ways=2),
    )
    WORKLOADS = ("soplex", "libq", "mcf", "sphinx")  # the quick suite

    def keys(self):
        return [
            key_for(workload=w, design=d)
            for d in self.DESIGNS
            for w in self.WORKLOADS
        ]

    def test_parallel_bit_identical_to_serial(self):
        serial = Executor(jobs=1).run(self.keys())
        parallel = Executor(jobs=4).run(self.keys())
        assert set(serial) == set(parallel)
        for key, result in serial.items():
            assert parallel[key].to_dict() == result.to_dict()

    def test_warm_store_skips_simulation(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = Executor(jobs=1, store=store)
        first = cold.run(self.keys())
        assert cold.stats.executed == len(self.keys())
        assert cold.stats.cached == 0

        warm = Executor(jobs=1, store=ResultStore(tmp_path))
        second = warm.run(self.keys())
        assert warm.stats.executed == 0
        assert warm.stats.cached == len(self.keys())
        for key, result in first.items():
            assert second[key].to_dict() == result.to_dict()

    def test_store_invalidation_reruns(self, tmp_path):
        store = ResultStore(tmp_path)
        ex = Executor(jobs=1, store=store)
        ex.run([key_for()])
        ex.run([key_for(seed=8)])
        assert ex.stats.executed == 1  # different seed: not served warm

    def test_duplicate_keys_run_once(self):
        ex = Executor(jobs=1)
        results = ex.run([key_for(), key_for()])
        assert ex.stats.executed == 1
        assert len(results) == 1

    def test_progress_reporting(self, tmp_path):
        events = []
        store = ResultStore(tmp_path)
        ex = Executor(jobs=1, store=store,
                      progress=lambda d, t, k, s: events.append((d, t, s)))
        ex.run([key_for()])
        assert events == [(1, 1, "run")]
        events.clear()
        Executor(jobs=1, store=store,
                 progress=lambda d, t, k, s: events.append((d, t, s))
                 ).run([key_for()])
        assert events == [(1, 1, "cached")]

    def test_cached_result_keeps_caller_label(self, tmp_path):
        store = ResultStore(tmp_path)
        Executor(jobs=1, store=store).run([key_for()])
        labelled = AccordDesign(kind="accord", ways=2, label="mine")
        key = key_for(design=labelled)
        warm = Executor(jobs=1, store=store)
        results = warm.run([key])
        assert warm.stats.cached == 1
        assert results[key].design.label == "mine"

    def test_simulation_errors_propagate(self):
        bad = key_for(workload="no_such_workload")
        with pytest.raises(ReproError):
            Executor(jobs=1).run([bad])
        with pytest.raises(ReproError):
            Executor(jobs=2).run([bad, key_for(workload="also_bogus")])

    def test_rejects_bad_concurrency(self):
        with pytest.raises(ConfigError):
            Executor(jobs=0)
        with pytest.raises(ConfigError):
            Executor(retries=-1)


class TestRunSuiteRouting:
    def test_run_suite_store_and_jobs(self, tmp_path):
        from repro.sim.runner import run_suite

        design = AccordDesign(kind="accord", ways=2)
        store = ResultStore(tmp_path)
        plain = run_suite(design, ["soplex", "libq"], num_accesses=ACCESSES)
        routed = run_suite(design, ["soplex", "libq"], num_accesses=ACCESSES,
                           jobs=2, store=store)
        assert {w: r.to_dict() for w, r in plain.items()} == \
               {w: r.to_dict() for w, r in routed.items()}
        assert len(store) == 2

    def test_run_suite_rejects_custom_config_when_routed(self, tmp_path):
        from repro.params.system import scaled_system
        from repro.sim.runner import run_suite

        design = AccordDesign(kind="accord", ways=2)
        custom = scaled_system(ways=2).with_dram_cache(2 * 1024 * 1024, 2)
        with pytest.raises(ConfigError):
            run_suite(design, ["soplex"], config=custom,
                      num_accesses=ACCESSES, store=ResultStore(tmp_path))


class TestDesignSpecParsing:
    def test_kind_only(self):
        assert parse_design_spec("direct") == AccordDesign(kind="direct", ways=1)

    def test_kind_and_ways(self):
        assert parse_design_spec("accord:2") == AccordDesign(kind="accord", ways=2)

    def test_sws_hashes_positional(self):
        design = parse_design_spec("sws:8:4")
        assert design.ways == 8 and design.hashes == 4

    def test_key_value_fields(self):
        design = parse_design_spec("pws:2:pip=0.9")
        assert design.pip == 0.9
        design = parse_design_spec("accord:2:replacement=lru:region_size=8192")
        assert design.replacement == "lru" and design.region_size == 8192

    @pytest.mark.parametrize("bad", [
        "", "bogus", "accord:two", "accord:2:pip", "accord:2:nope=1",
        "pws:2:pip=abc",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_design_spec(bad)
