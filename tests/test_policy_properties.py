"""Property-based tests on policy data structures.

The RecentRegionTable is checked against a reference model
(an ordered dict with explicit LRU), and replacement policies against
their contracts (victims always among the candidates; LRU matches a
reference list model).
"""

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import (
    LruReplacement,
    NruReplacement,
    RandomReplacement,
    RripReplacement,
)
from repro.cache.storage import TagStore
from repro.core.gws import RecentRegionTable
from repro.utils.rng import XorShift64

_ENTRIES = 8


class RegionTableMachine(RuleBasedStateMachine):
    """RecentRegionTable vs an explicit LRU-list reference model."""

    def __init__(self):
        super().__init__()
        self.table = RecentRegionTable(entries=_ENTRIES)
        self.model = []  # list of (region, way); front = LRU

    def _model_get(self, region):
        for i, (r, w) in enumerate(self.model):
            if r == region:
                self.model.append(self.model.pop(i))
                return w
        return None

    def _model_put(self, region, way):
        for i, (r, _w) in enumerate(self.model):
            if r == region:
                self.model.pop(i)
                break
        self.model.append((region, way))
        while len(self.model) > _ENTRIES:
            self.model.pop(0)

    @rule(region=st.integers(min_value=0, max_value=20),
          way=st.integers(min_value=0, max_value=1))
    def record(self, region, way):
        self.table.record(region, way)
        self._model_put(region, way)

    @rule(region=st.integers(min_value=0, max_value=20))
    def lookup(self, region):
        assert self.table.lookup(region) == self._model_get(region)

    @invariant()
    def size_bounded(self):
        assert len(self.table) <= _ENTRIES
        assert len(self.table) == len(self.model)


RegionTableMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
TestRegionTableModel = RegionTableMachine.TestCase


_GEOMETRY = CacheGeometry(16 * 1024, 4)


@given(
    filled=st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=4,
                    unique=True),
    candidates=st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                        max_size=4, unique=True),
    seed=st.integers(min_value=1, max_value=1000),
)
def test_property_victims_always_candidates(filled, candidates, seed):
    store = TagStore(_GEOMETRY)
    for way in filled:
        store.install(0, way, way + 100)
    policies = [
        RandomReplacement(XorShift64(seed)),
        LruReplacement(_GEOMETRY),
        NruReplacement(_GEOMETRY, XorShift64(seed)),
        RripReplacement(_GEOMETRY, rng=XorShift64(seed)),
    ]
    for policy in policies:
        victim = policy.victim(0, tuple(candidates), store)
        assert victim in candidates


@given(touch_order=st.permutations([0, 1, 2, 3]))
def test_property_lru_matches_reference(touch_order):
    store = TagStore(_GEOMETRY)
    policy = LruReplacement(_GEOMETRY)
    for way in range(4):
        store.install(0, way, way + 1)
        policy.on_install(0, way)
    for way in touch_order:
        policy.on_hit(0, way)
    # The least recently touched way is the first in touch_order.
    assert policy.victim(0, (0, 1, 2, 3), store) == touch_order[0]


@given(seed=st.integers(min_value=1, max_value=10_000))
def test_property_rrip_promotes_hits(seed):
    store = TagStore(_GEOMETRY)
    policy = RripReplacement(_GEOMETRY, rng=XorShift64(seed))
    for way in range(4):
        store.install(0, way, way + 1)
        policy.on_install(0, way)
    policy.on_hit(0, 2)  # rrpv 0: most protected
    # Evicting three times must remove all ways except 2 first.
    evicted = set()
    for _ in range(3):
        victim = policy.victim(0, (0, 1, 2, 3), store)
        assert victim != 2
        evicted.add(victim)
        store.invalidate(0, victim)
        store.install(0, victim, victim + 50)
        policy.on_install(0, victim)
    assert evicted == {0, 1, 3}
