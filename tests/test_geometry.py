"""Unit + property tests for cache geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.errors import GeometryError


class TestConstruction:
    def test_basic(self):
        g = CacheGeometry(8 * 1024, 2)
        assert g.num_lines == 128
        assert g.num_sets == 64
        assert g.offset_bits == 6
        assert g.index_bits == 6

    def test_direct_mapped(self):
        g = CacheGeometry(4 * 1024 * 1024 * 1024, 1)  # the paper's 4GB
        assert g.num_lines == 64 * 1024 * 1024
        assert g.num_sets == g.num_lines

    def test_rejects_bad_parameters(self):
        with pytest.raises(GeometryError):
            CacheGeometry(0, 1)
        with pytest.raises(GeometryError):
            CacheGeometry(8 * 1024, 0)
        with pytest.raises(GeometryError):
            CacheGeometry(8 * 1024, 1, line_size=48)
        with pytest.raises(GeometryError):
            CacheGeometry(8 * 1024, 3)  # 128/3 not integral... and sets not pow2

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(GeometryError):
            CacheGeometry(192 * 64, 1)  # 192 sets


class TestMapping:
    def test_split_matches_parts(self):
        g = CacheGeometry(8 * 1024, 2)
        for addr in (0, 64, 4096, 123456, 999999936):
            assert g.split(addr) == (g.set_index(addr), g.tag(addr))

    def test_addr_of_roundtrip(self):
        g = CacheGeometry(8 * 1024, 2)
        for set_index in (0, 1, 63):
            for tag in (0, 1, 5, 1000):
                addr = g.addr_of(set_index, tag)
                assert g.set_index(addr) == set_index
                assert g.tag(addr) == tag

    def test_addr_of_rejects_bad_set(self):
        g = CacheGeometry(8 * 1024, 2)
        with pytest.raises(GeometryError):
            g.addr_of(64, 0)

    def test_offset_ignored(self):
        g = CacheGeometry(8 * 1024, 2)
        assert g.split(4096) == g.split(4096 + 63)

    def test_way_span(self):
        g = CacheGeometry(8 * 1024, 2)
        assert g.way_span_bytes() == 64 * 64
        addr = 12345 & ~63
        assert g.conflicts(addr, addr + g.way_span_bytes())

    def test_capacity_aliases_in_all_organizations(self):
        # Lines one capacity apart share a set regardless of ways —
        # the invariant workload conflict groups rely on.
        for ways in (1, 2, 4, 8):
            g = CacheGeometry(32 * 1024, ways)
            assert g.conflicts(0, 32 * 1024)
            assert g.conflicts(4096, 4096 + 32 * 1024)

    def test_with_ways(self):
        g = CacheGeometry(8 * 1024, 1)
        g2 = g.with_ways(4)
        assert g2.capacity_bytes == g.capacity_bytes
        assert g2.ways == 4
        assert g2.num_sets == g.num_sets // 4


@given(
    capacity_exp=st.integers(min_value=13, max_value=24),
    ways_exp=st.integers(min_value=0, max_value=3),
    addr=st.integers(min_value=0, max_value=2**48),
)
def test_property_split_consistency(capacity_exp, ways_exp, addr):
    g = CacheGeometry(1 << capacity_exp, 1 << ways_exp)
    set_index, tag = g.split(addr)
    assert 0 <= set_index < g.num_sets
    reconstructed = g.addr_of(set_index, tag)
    # Reconstruction recovers the line-aligned address.
    assert reconstructed == (addr >> g.offset_bits) << g.offset_bits


@given(
    addr_a=st.integers(min_value=0, max_value=2**40),
    addr_b=st.integers(min_value=0, max_value=2**40),
)
def test_property_conflict_symmetry(addr_a, addr_b):
    g = CacheGeometry(64 * 1024, 4)
    assert g.conflicts(addr_a, addr_b) == g.conflicts(addr_b, addr_a)
