"""Trust-layer tests: digests, sampling, breaker, shadow verify, audit.

The runtime verification subsystem (:mod:`repro.verify`) exists to
catch *wrong answers*, not just crashes: a silently corrupted in-memory
result, bit-rot in the store that stays valid JSON, or an engine whose
kernel drifted from the reference loop. These tests inject each of
those failure modes and assert the sweep detects, quarantines, heals —
and still produces results bit-identical to a fault-free run.
"""

import json
import warnings

import pytest

from repro.core.accord import AccordDesign
from repro.errors import ConfigError, SimulationError, VerificationError
from repro.exec import Executor, JobKey, ResultStore, SweepJournal
from repro.exec.faults import FAULT_PLAN_ENV
from repro.exec.resilience import quarantine_entry
from repro.params.system import scaled_system
from repro.sim.engines import resolve_engine
from repro.sim.system import build_dram_cache
from repro.verify import breaker, payload_digest, result_digest
from repro.verify.audit import audit_store, format_report
from repro.verify.shadow import should_verify

ACCESSES = 2500

DESIGNS = (
    AccordDesign(kind="direct", ways=1),
    AccordDesign(kind="accord", ways=2),
)
WORKLOADS = ("soplex", "mcf")


def all_keys(**overrides):
    return [
        JobKey(design=d, workload=w, num_accesses=ACCESSES, warmup=0.3,
               seed=7, **overrides)
        for d in DESIGNS
        for w in WORKLOADS
    ]


@pytest.fixture(autouse=True)
def clean_breaker(monkeypatch):
    """Every test starts and ends with no tripped engines."""
    monkeypatch.delenv(breaker.ENGINE_DENY_ENV, raising=False)
    breaker.reset()
    yield
    breaker.reset()


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serial reference results, computed once."""
    results = Executor(jobs=1).run(all_keys())
    return {key: result.to_dict() for key, result in results.items()}


# -- digests ---------------------------------------------------------------


class TestDigests:
    def test_result_digest_matches_embedded_payload_digest(self, baseline):
        for record in baseline.values():
            assert record["payload_digest"] == payload_digest(
                record["stats"], record["phases"]
            )

    def test_digest_is_key_order_independent(self):
        a = payload_digest({"hits": 1, "misses": 2}, None)
        b = payload_digest({"misses": 2, "hits": 1}, None)
        assert a == b

    def test_digest_changes_with_any_field(self):
        base = payload_digest({"hits": 1, "misses": 2}, None)
        assert payload_digest({"hits": 2, "misses": 2}, None) != base
        assert payload_digest({"hits": 1, "misses": 3}, None) != base
        assert payload_digest({"hits": 1, "misses": 2}, {"epoch": 5}) != base


# -- deterministic sampling ------------------------------------------------


class TestSampling:
    def test_edges(self):
        assert not should_verify("abc", 0.0)
        assert not should_verify("abc", -1.0)
        assert should_verify("abc", 1.0)
        assert should_verify("abc", 2.0)

    def test_deterministic_per_digest(self):
        digests = [f"{i:064x}" for i in range(200)]
        first = [should_verify(d, 0.3) for d in digests]
        second = [should_verify(d, 0.3) for d in digests]
        assert first == second
        assert any(first) and not all(first)

    def test_sample_nests_as_fraction_grows(self):
        digests = [f"{i:064x}" for i in range(500)]
        small = {d for d in digests if should_verify(d, 0.1)}
        large = {d for d in digests if should_verify(d, 0.5)}
        assert small <= large

    def test_rate_is_roughly_the_fraction(self):
        digests = [f"{i:064x}" for i in range(2000)]
        hit = sum(1 for d in digests if should_verify(d, 0.25))
        assert 0.18 < hit / len(digests) < 0.32


# -- the circuit breaker ---------------------------------------------------


class TestBreaker:
    def test_trip_and_reset(self):
        assert not breaker.is_tripped("vector")
        with pytest.warns(RuntimeWarning, match="circuit-broken"):
            assert breaker.trip("vector", reason="test")
        assert breaker.is_tripped("vector")
        assert "vector" in breaker.tripped()
        import os
        assert "vector" in os.environ[breaker.ENGINE_DENY_ENV]
        breaker.reset()
        assert not breaker.is_tripped("vector")

    def test_second_trip_is_a_noop(self):
        with pytest.warns(RuntimeWarning):
            assert breaker.trip("replay")
        assert not breaker.trip("replay")

    def test_loop_cannot_be_tripped(self):
        with pytest.raises(ConfigError, match="cannot be circuit-broken"):
            breaker.trip("loop")

    def test_deny_env_is_honored(self, monkeypatch):
        monkeypatch.setenv(breaker.ENGINE_DENY_ENV, "vector,replay")
        assert breaker.is_tripped("vector")
        assert breaker.is_tripped("replay")
        assert not breaker.is_tripped("stream")

    def test_resolver_skips_tripped_engines(self):
        design = AccordDesign(kind="direct", ways=1)
        cache = build_dram_cache(
            design, scaled_system(ways=1, scale=1.0 / 2048.0), seed=5
        )
        assert type(resolve_engine(cache, "auto")).__name__ == "VectorEngine"
        with pytest.warns(RuntimeWarning):
            breaker.trip("vector")
        resolved = resolve_engine(cache, "auto")
        assert type(resolved).__name__ != "VectorEngine"

    def test_explicit_request_for_tripped_engine_falls_back(self):
        design = AccordDesign(kind="direct", ways=1)
        cache = build_dram_cache(
            design, scaled_system(ways=1, scale=1.0 / 2048.0), seed=5
        )
        with pytest.warns(RuntimeWarning):
            breaker.trip("vector")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            resolved = resolve_engine(cache, "vector", design=design)
        assert type(resolved).__name__ != "VectorEngine"
        with pytest.raises(SimulationError, match="circuit-broken"):
            resolve_engine(cache, "vector", strict=True, design=design)


# -- store payload digests -------------------------------------------------


class TestStorePayloadDigest:
    def test_tampered_but_valid_json_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        key = all_keys()[0]
        Executor(jobs=1, store=store).run([key])
        path = store.path_for(key)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["result"]["stats"]["hits"] += 1  # stays valid JSON
        path.write_text(json.dumps(record), encoding="utf-8")

        warm = ResultStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="payload digest mismatch"):
            assert warm.get(key) is None
        assert warm.stats.quarantined == 1
        assert any((tmp_path / "quarantine").glob("*.why"))

    def test_corrupt_payload_fault_is_caught_and_healed(
        self, tmp_path, monkeypatch, baseline
    ):
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            f"corrupt_payload=1;dir={tmp_path / 'ledger'}",
        )
        Executor(jobs=1, store=ResultStore(tmp_path / "r")).run(all_keys())
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert (tmp_path / "ledger" / "corrupt_payload.0").exists()

        warm = ResultStore(tmp_path / "r")
        ex = Executor(jobs=1, store=warm)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            resolved = ex.run(all_keys())
        assert ex.stats.executed == 1  # only the garbled entry re-ran
        assert warm.stats.quarantined == 1
        assert {k: r.to_dict() for k, r in resolved.items()} == baseline


# -- shadow verification ---------------------------------------------------


class TestShadowVerification:
    def test_clean_run_verifies_everything(self, baseline):
        ex = Executor(jobs=1, verify_fraction=1.0)
        resolved = ex.run(all_keys())
        assert ex.stats.verified == len(all_keys())
        assert ex.stats.mismatches == 0
        assert {k: r.to_dict() for k, r in resolved.items()} == baseline

    def test_fraction_zero_never_samples(self):
        ex = Executor(jobs=1)
        ex.run(all_keys()[:1])
        assert ex.stats.verified == 0

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigError, match="verify_fraction"):
            Executor(jobs=1, verify_fraction=1.5)
        with pytest.raises(ConfigError, match="verify_engine"):
            Executor(jobs=1, verify_engine="vector")

    def test_injected_wrong_answer_caught_quarantined_healed(
        self, tmp_path, monkeypatch, baseline
    ):
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            f"corrupt_result=1;dir={tmp_path / 'ledger'}",
        )
        store = ResultStore(tmp_path / "r")
        ex = Executor(jobs=1, store=store, verify_fraction=1.0)
        with pytest.warns(RuntimeWarning, match="circuit-broken"):
            resolved = ex.run(all_keys())
        assert ex.stats.mismatches == 1
        assert ex.stats.verified == len(all_keys()) - 1
        # Both sides of the mismatch are preserved with .why sidecars.
        qdir = tmp_path / "r" / "quarantine"
        suspects = list(qdir.glob("*.suspect.json"))
        references = list(qdir.glob("*.reference.json"))
        assert len(suspects) == 1 and len(references) == 1
        why = json.loads(
            (qdir / f"{suspects[0].name}.why").read_text(encoding="utf-8")
        )
        assert why["reason"] == "shadow verification mismatch"
        assert why["engine"] in ("vector", "replay")
        assert why["suspect_digest"] != why["reference_digest"]
        # The offending engine is demoted for the rest of the process.
        assert breaker.is_tripped(why["engine"])
        # And the sweep healed: bit-identical to the fault-free run.
        assert {k: r.to_dict() for k, r in resolved.items()} == baseline
        # The healed (reference) result is what got memoized.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            stored = ResultStore(tmp_path / "r").get(all_keys()[0])
        assert stored is not None

    def test_unhealable_mismatch_raises(self, tmp_path, monkeypatch):
        # Force the suspect onto the verify engine itself: a mismatch
        # then has no more-trusted engine to heal from.
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            f"corrupt_result=1;dir={tmp_path / 'ledger'}",
        )
        ex = Executor(jobs=1, verify_fraction=1.0, verify_engine="stream")
        with pytest.raises(VerificationError, match="no trusted engine"):
            ex.run(all_keys(engine="stream"))

    def test_on_verify_callback_streams_outcomes(self, tmp_path, monkeypatch):
        events = []
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            f"corrupt_result=1;dir={tmp_path / 'ledger'}",
        )
        ex = Executor(
            jobs=1, verify_fraction=1.0,
            on_verify=lambda key, outcome, detail: events.append(
                (key.digest(), outcome, detail)
            ),
        )
        with pytest.warns(RuntimeWarning, match="circuit-broken"):
            ex.run(all_keys())
        outcomes = [outcome for _, outcome, _ in events]
        assert outcomes.count("mismatch") == 1
        assert outcomes.count("ok") == len(all_keys()) - 1
        mismatch = next(d for _, o, d in events if o == "mismatch")
        assert {"engine", "suspect", "reference"} <= set(mismatch)


# -- journal integration: verification state survives a kill ---------------


class TestVerifyResume:
    def test_verified_credit_survives_resume(self, tmp_path):
        keys = all_keys()
        path = tmp_path / "sweep.journal.jsonl"
        first = SweepJournal(path)
        first.begin(keys)
        interrupted = Executor(jobs=1, journal=first, verify_fraction=1.0)
        interrupted.run(keys[:2])  # "killed" two jobs in
        assert interrupted.stats.verified == 2

        second = SweepJournal(path)
        assert second.load() == 2
        assert second.verify_outcome(keys[0]) == "ok"
        ex = Executor(jobs=1, journal=second, verify_fraction=1.0)
        resolved = ex.run(keys)
        assert ex.stats.resumed == 2
        assert ex.stats.executed == len(keys) - 2
        # Journaled verify_ok lines carry their credit across the kill:
        # nothing is re-verified, yet the summary vouches for all jobs.
        assert ex.stats.verified == len(keys)
        assert len(resolved) == len(keys)

    def test_journal_records_verify_events(self, tmp_path):
        keys = all_keys()[:1]
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.begin(keys)
        Executor(jobs=1, journal=journal, verify_fraction=1.0).run(keys)
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "j.jsonl").read_text().splitlines()
            if '"event"' in line
        ]
        assert "verify_sampled" in events
        assert "verify_ok" in events


# -- atomic quarantine sidecars --------------------------------------------


class TestAtomicWhy:
    def test_why_write_survives_injected_disk_full(
        self, tmp_path, monkeypatch
    ):
        victim = tmp_path / "aa" / "deadbeef.json"
        victim.parent.mkdir(parents=True)
        victim.write_text("{}", encoding="utf-8")
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            f"disk_full_why=1;dir={tmp_path / 'ledger'}",
        )
        # The entry still moves aside; only the sidecar write fails —
        # and it fails cleanly: no exception, no torn .why, no litter.
        moved = quarantine_entry(victim, tmp_path, "test reason")
        qdir = tmp_path / "quarantine"
        assert moved == qdir / victim.name
        assert not list(qdir.glob("*.why"))
        assert not list(qdir.glob(".tmp-*"))
        monkeypatch.delenv(FAULT_PLAN_ENV)

        second = tmp_path / "aa" / "cafebabe.json"
        second.write_text("{}", encoding="utf-8")
        quarantine_entry(second, tmp_path, "second reason")
        why = qdir / f"{second.name}.why"
        assert why.is_file()
        assert "second reason" in why.read_text(encoding="utf-8")


# -- the audit subcommand --------------------------------------------------


class TestAudit:
    def _filled_store(self, root):
        store = ResultStore(root)
        Executor(jobs=1, store=store).run(all_keys())
        return store

    def test_clean_store_audits_clean(self, tmp_path):
        self._filled_store(tmp_path)
        report = audit_store(tmp_path)
        assert report.scanned == len(all_keys())
        assert report.clean == report.scanned
        assert report.mismatches == 0
        assert "integrity: OK" in format_report(report)

    def test_bit_rot_found_quarantined_and_ranked(self, tmp_path):
        store = self._filled_store(tmp_path)
        path = store.path_for(all_keys()[0])
        record = json.loads(path.read_text(encoding="utf-8"))
        record["result"]["stats"]["misses"] += 7
        path.write_text(json.dumps(record), encoding="utf-8")

        report = audit_store(tmp_path)
        assert report.digest_mismatches == 1
        assert report.mismatches == 1
        assert report.quarantined_now == 1
        assert not path.exists()  # moved to quarantine
        text = format_report(report)
        assert "payload digest mismatches" in text
        assert "integrity: 1 mismatch" in text

    def test_recompute_catches_wrong_from_birth(self, tmp_path):
        store = self._filled_store(tmp_path)
        key = all_keys()[0]
        path = store.path_for(key)
        record = json.loads(path.read_text(encoding="utf-8"))
        # A result that was wrong when computed: perturb a counter AND
        # refresh the embedded digest, so only re-execution can tell.
        record["result"]["stats"]["hits"] += 1
        record["result"]["payload_digest"] = payload_digest(
            record["result"]["stats"], record["result"]["phases"]
        )
        path.write_text(json.dumps(record), encoding="utf-8")

        digest_only = audit_store(tmp_path, quarantine=False)
        assert digest_only.mismatches == 0  # digest checks cannot see it
        report = audit_store(tmp_path, recompute_fraction=1.0)
        assert report.recomputed == len(all_keys())
        assert report.recompute_mismatches == 1
        assert "WRONG ANSWERS" in format_report(report)

    def test_stale_schema_counted_not_a_mismatch(self, tmp_path):
        store = self._filled_store(tmp_path)
        path = store.path_for(all_keys()[0])
        record = json.loads(path.read_text(encoding="utf-8"))
        record["schema"] = record["schema"] - 1
        path.write_text(json.dumps(record), encoding="utf-8")
        report = audit_store(tmp_path)
        assert report.stale_schema == 1
        assert report.mismatches == 0

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.__main__ import main

        store = self._filled_store(tmp_path)
        assert main(["audit", "--results-dir", str(tmp_path),
                     "--no-traces"]) == 0
        path = store.path_for(all_keys()[0])
        record = json.loads(path.read_text(encoding="utf-8"))
        record["result"]["stats"]["hits"] += 1
        path.write_text(json.dumps(record), encoding="utf-8")
        assert main(["audit", "--results-dir", str(tmp_path),
                     "--no-traces"]) == 4
        capsys.readouterr()
