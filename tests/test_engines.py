"""Engine-layer equivalence and resolver contract.

The drive path is pluggable (:mod:`repro.sim.engines`): the per-address
reference loop, the batched ``run_stream`` loop, and the whole-trace
vectorized numpy kernel are three implementations of one specification.
The matrix below pins all of them bit-identical — ``CacheStats``, the
whole ``RunResult`` and the phase series — for every benchmark design
variant, serial and set-sharded, on randomized traces. That equivalence
is what licenses excluding the engine from :meth:`JobKey.canonical`:
a result computed under any engine satisfies the same key.
"""

import warnings

import pytest

from repro.core.accord import AccordDesign
from repro.core.protocols import ensure_policy_conformance
from repro.core.sws import SkewedWaySteering
from repro.errors import ConfigError, SimulationError
from repro.exec.jobs import JobKey
from repro.params.system import scaled_system
from repro.sim.bench import BENCH_DESIGNS
from repro.sim.engines import (
    ENGINE_NAMES,
    ENGINES,
    TraceStream,
    get_engine,
    resolve_engine,
    serial_segments,
)
from repro.sim.shard import run_sharded
from repro.sim.system import Simulator, build_dram_cache
from repro.sim.trace import Trace
from repro.utils.rng import XorShift64

SCALE = 1.0 / 2048.0
EPOCH = 500


def random_trace(seed: int, n: int = 3000, footprint_lines: int = 700) -> Trace:
    """Randomized mixed read/write trace over a small footprint."""
    rng = XorShift64(seed)
    addrs = []
    writes = bytearray()
    for _ in range(n):
        addrs.append(rng.next_below(footprint_lines) * 64)
        writes.append(1 if rng.next_below(4) == 0 else 0)
    return Trace(f"random-{seed}", addrs, writes, instructions_per_access=40.0)


def _design_id(design):
    return design.display_name.replace(" ", "_")


@pytest.fixture(scope="module")
def trace():
    t = random_trace(310)
    assert any(t.writes) and not all(t.writes)
    return t


@pytest.fixture(scope="module")
def loop_reference(trace):
    """Per-design loop-engine serial results, computed once (with phases)."""
    memo = {}

    def get(design):
        key = design.display_name
        if key not in memo:
            config = scaled_system(ways=design.ways, scale=SCALE)
            memo[key] = Simulator(config, design, seed=5).run(
                trace, warmup_fraction=0.3, epoch=EPOCH, engine="loop"
            ).to_dict()
        return memo[key]

    return get


class TestEngineEquivalenceMatrix:
    """16 designs x {loop, stream, vector, replay} x serial/sharded.

    Unsupported explicit requests fall down the chain (with a warning we
    silence here), so every cell is still a valid exactness check: the
    engine that actually ran must reproduce the reference loop.
    """

    @pytest.mark.parametrize("engine", ["stream", "vector", "replay"])
    @pytest.mark.parametrize("design", BENCH_DESIGNS, ids=_design_id)
    def test_serial_engines_match_loop(self, design, engine, trace,
                                       loop_reference):
        config = scaled_system(ways=design.ways, scale=SCALE)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = Simulator(config, design, seed=5).run(
                trace, warmup_fraction=0.3, epoch=EPOCH, engine=engine
            )
        assert result.to_dict() == loop_reference(design)

    @pytest.mark.parametrize("engine", ["loop", "stream", "vector", "replay"])
    @pytest.mark.parametrize("design", BENCH_DESIGNS, ids=_design_id)
    def test_sharded_engines_match_loop(self, design, engine, trace,
                                        loop_reference):
        config = scaled_system(ways=design.ways, scale=SCALE)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = run_sharded(
                config, design, trace, warmup=0.3, epoch=EPOCH,
                shards=3, seed=5, inline=True, engine=engine,
            )
        assert result.to_dict() == loop_reference(design)


def _drive(cache, trace, engine_name, warm_frac=0.3, epoch=None):
    """Drive a hand-assembled cache with one engine; return its outputs."""
    engine = get_engine(engine_name)
    assert engine.supports(cache)
    warm = int(len(trace) * warm_frac)
    stream = TraceStream(trace, cache.geometry)
    segments = serial_segments(trace, warm, epoch)
    phases = engine.drive(cache, stream, warm, segments, epoch)
    return (
        cache.stats.to_dict(),
        phases.to_dict() if phases is not None else None,
    )


class TestVectorProperties:
    """Property checks against the reference loop on randomized traces."""

    @pytest.mark.parametrize("seed", [11, 12, 13])
    @pytest.mark.parametrize("warm", [0.0, 0.3, 0.8])
    def test_random_traces_and_warmups(self, seed, warm):
        design = AccordDesign(kind="pws", ways=2)
        config = scaled_system(ways=2, scale=SCALE)
        trace = random_trace(seed, n=2000)
        vec = Simulator(config, design, seed=seed).run(
            trace, warmup_fraction=warm, epoch=333, engine="vector"
        )
        ref = Simulator(config, design, seed=seed).run(
            trace, warmup_fraction=warm, epoch=333, engine="loop"
        )
        assert vec.to_dict() == ref.to_dict()

    @pytest.mark.parametrize("dcp", ["none", "exact"])
    @pytest.mark.parametrize("kind", ["serial", "mru", "partial_tag"])
    def test_dcp_modes(self, kind, dcp, trace):
        """No DCP at all (modelled writeback probes) stays exact too."""
        design = AccordDesign(kind=kind, ways=2, dcp=dcp)
        config = scaled_system(ways=2, scale=SCALE)
        vec = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, engine="vector"
        )
        ref = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, engine="loop"
        )
        assert vec.to_dict() == ref.to_dict()

    @pytest.mark.parametrize("hashes", [1, 2, 4])
    def test_standalone_sws_steering(self, hashes, trace):
        """SWS without the GWS wrapper is vectorizable and exact."""
        design = AccordDesign(kind="serial", ways=8)
        config = scaled_system(ways=8, scale=SCALE)
        outs = []
        for engine_name in ("vector", "loop"):
            cache = build_dram_cache(design, config, seed=9)
            cache.steering = SkewedWaySteering(
                cache.geometry, hashes=hashes, pip=0.9, rng=XorShift64(123)
            )
            ensure_policy_conformance(cache)
            outs.append(_drive(cache, trace, engine_name, epoch=400))
        assert outs[0] == outs[1]

    def test_finite_dcp_is_not_vectorizable(self, trace):
        """The finite directory is stateful in a way the kernel does not
        replay; the resolver must not hand such a cache to vector."""
        design = AccordDesign(kind="serial", ways=2, dcp="finite")
        config = scaled_system(ways=2, scale=SCALE)
        cache = build_dram_cache(design, config, seed=5)
        assert not ENGINES["vector"].supports(cache)
        assert not ENGINES["replay"].supports(cache)


class TestReplayProperties:
    """Randomized global-state configs: replay == reference loop.

    The equivalence matrix pins the 16 benchmark variants; these
    configs vary everything the replay kernels parameterize — region
    table sizes and granularities, install-coin biases, way counts,
    hash counts (including the degenerate single-hash row that skips
    the coin entirely), and both DCP modes (exact directory vs modelled
    writeback probes) — on randomized traces, phases included.
    """

    CONFIGS = [
        AccordDesign(kind="gws", ways=2, rit_entries=8, rlt_entries=8,
                     region_size=1024),
        AccordDesign(kind="gws", ways=2, dcp="none"),
        AccordDesign(kind="accord", ways=2, pip=0.5, region_size=1024,
                     rit_entries=16),
        AccordDesign(kind="accord", ways=2, dcp="none", pip=0.99),
        AccordDesign(kind="accord", ways=4, rit_entries=4, rlt_entries=128,
                     region_size=512),
        AccordDesign(kind="sws", ways=8, hashes=3, pip=0.7, dcp="none",
                     rit_entries=8),
        AccordDesign(kind="sws", ways=8, hashes=1),
        AccordDesign(kind="dueling", ways=2, rit_entries=8),
        AccordDesign(kind="dueling", ways=4, dcp="none", region_size=1024),
    ]

    @pytest.mark.parametrize("seed", [21, 22])
    @pytest.mark.parametrize("design", CONFIGS, ids=_design_id)
    def test_randomized_configs_match_loop(self, design, seed):
        config = scaled_system(ways=design.ways, scale=SCALE)
        trace = random_trace(seed * 7 + 1, n=2500)
        cache = build_dram_cache(design, config, seed=seed)
        assert ENGINES["replay"].supports(cache)
        rep = Simulator(config, design, seed=seed).run(
            trace, warmup_fraction=0.25, epoch=400, engine="replay"
        )
        ref = Simulator(config, design, seed=seed).run(
            trace, warmup_fraction=0.25, epoch=400, engine="loop"
        )
        assert rep.to_dict() == ref.to_dict()

    def test_replay_requires_fresh_tables(self, trace):
        """A cache whose region tables already hold entries cannot be
        replayed from build-time defaults; supports() must decline."""
        design = AccordDesign(kind="accord", ways=2)
        config = scaled_system(ways=2, scale=SCALE)
        cache = build_dram_cache(design, config, seed=5)
        assert ENGINES["replay"].supports(cache)
        cache.steering.rit.record(0, 1)
        assert not ENGINES["replay"].supports(cache)


class TestTracePlanCache:
    """The vector engine's weakref-keyed stream-array plan cache."""

    def test_plans_reused_across_runs(self):
        from repro.sim.engines.vector import _TRACE_PLANS

        design = AccordDesign(kind="pws", ways=2)
        config = scaled_system(ways=2, scale=SCALE)
        trace = random_trace(401, n=1500)
        simulator = Simulator(config, design, seed=5)
        first = simulator.run(trace, warmup_fraction=0.3, engine="vector")
        entry = _TRACE_PLANS.get(id(trace))
        assert entry is not None
        plans = entry[1]
        assert len(plans) == 1
        cached = next(iter(plans.values()))
        second = simulator.run(trace, warmup_fraction=0.3, engine="vector")
        assert _TRACE_PLANS[id(trace)][1] is plans
        assert next(iter(plans.values())) is cached  # reused, not rebuilt
        assert first.to_dict() == second.to_dict()

    def test_replay_engine_shares_the_plan_cache(self):
        """Replay precomputes through the same _stream_arrays memo, so a
        mixed vector/replay sweep decomposes each trace once."""
        from repro.sim.engines.vector import _TRACE_PLANS

        design = AccordDesign(kind="accord", ways=2)
        config = scaled_system(ways=2, scale=SCALE)
        trace = random_trace(403, n=1500)
        Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, engine="replay"
        )
        entry = _TRACE_PLANS.get(id(trace))
        assert entry is not None and len(entry[1]) == 1

    def test_dropping_trace_releases_plan(self):
        import gc

        from repro.sim.engines.vector import _TRACE_PLANS

        design = AccordDesign(kind="pws", ways=2)
        config = scaled_system(ways=2, scale=SCALE)
        trace = random_trace(402, n=1500)
        Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, engine="vector"
        )
        key = id(trace)
        assert key in _TRACE_PLANS
        del trace
        gc.collect()
        assert key not in _TRACE_PLANS  # weakref callback evicted it


class TestResolver:
    def _cache(self, design):
        config = scaled_system(ways=design.ways, scale=SCALE)
        return build_dram_cache(
            design, config, seed=5
        ), design

    def test_auto_picks_fastest_supported(self):
        for kind, expected in (("pws", "vector"), ("gws", "replay"),
                               ("dueling", "replay"), ("ca", "replay")):
            design = AccordDesign(kind=kind, ways=1 if kind == "ca" else 2)
            cache, _ = self._cache(design)
            assert resolve_engine(cache, design=design).name == expected

    def test_explicit_supported_request_is_honored(self):
        cache, design = self._cache(AccordDesign(kind="pws", ways=2))
        for name in ("vector", "stream", "loop"):
            assert resolve_engine(cache, requested=name,
                                  design=design).name == name

    def test_unsupported_request_falls_back_with_one_warning(self):
        from repro.sim.engines import _ENGINE_FALLBACK_WARNED

        _ENGINE_FALLBACK_WARNED.clear()
        cache, design = self._cache(AccordDesign(kind="gws", ways=2))
        with pytest.warns(RuntimeWarning, match="--engine vector ignored"):
            engine = resolve_engine(cache, requested="vector", design=design)
        assert engine.name == "replay"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert resolve_engine(
                cache, requested="vector", design=design
            ).name == "replay"

    def test_replay_request_on_set_local_design_falls_to_stream(self):
        """Replay only implements the global-state stacks; a set-local
        design degrades past it to stream (never silently to loop)."""
        from repro.sim.engines import _ENGINE_FALLBACK_WARNED

        _ENGINE_FALLBACK_WARNED.clear()
        cache, design = self._cache(AccordDesign(kind="pws", ways=2))
        with pytest.warns(RuntimeWarning, match="--engine replay ignored"):
            engine = resolve_engine(cache, requested="replay", design=design)
        assert engine.name == "stream"
        _ENGINE_FALLBACK_WARNED.clear()

    def test_worker_processes_suppress_fallback_warning(self, monkeypatch):
        """Warn-once state is per-process; inside pool workers the
        warning is suppressed entirely (the parent warns at planning
        time), so --shards N cannot print N copies."""
        from repro.sim.engines import _ENGINE_FALLBACK_WARNED
        from repro.sim.shard import WORKER_ENV

        _ENGINE_FALLBACK_WARNED.clear()
        cache, design = self._cache(AccordDesign(kind="gws", ways=2))
        monkeypatch.setenv(WORKER_ENV, "1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would raise
            assert resolve_engine(
                cache, requested="vector", design=design
            ).name == "replay"
        _ENGINE_FALLBACK_WARNED.clear()

    def test_strict_raises_instead_of_falling_back(self):
        cache, design = self._cache(AccordDesign(kind="gws", ways=2))
        with pytest.raises(SimulationError, match="engine-strict"):
            resolve_engine(cache, requested="vector", strict=True,
                           design=design)

    def test_simulator_honors_strict(self, trace):
        config = scaled_system(ways=2, scale=SCALE)
        simulator = Simulator(config, AccordDesign(kind="gws", ways=2), seed=5)
        with pytest.raises(SimulationError, match="engine-strict"):
            simulator.run(trace, engine="vector", engine_strict=True)

    def test_unknown_names_are_rejected(self):
        cache, _ = self._cache(AccordDesign(kind="pws", ways=2))
        with pytest.raises(SimulationError, match="unknown engine"):
            resolve_engine(cache, requested="warp")
        with pytest.raises(SimulationError, match="unknown engine"):
            get_engine("warp")
        with pytest.raises(SimulationError, match="unknown engine"):
            get_engine("auto")  # registry holds concrete engines only

    def test_observer_disables_vector(self, trace):
        """An attached observer must force a non-vector engine (the
        kernel emits no events); results still match the loop."""
        from repro.cache.events import StatsObserver

        design = AccordDesign(kind="pws", ways=2)
        config = scaled_system(ways=2, scale=SCALE)
        simulator = Simulator(config, design, seed=5)
        simulator.cache.add_observer(StatsObserver())
        assert not ENGINES["vector"].supports(simulator.cache)

    def test_repeat_runs_are_independent(self, trace):
        """Simulator.run twice = two fresh caches, not cumulative state
        (the vector kernel replays build-time defaults, so the contract
        is enforced for every engine)."""
        design = AccordDesign(kind="pws", ways=2)
        config = scaled_system(ways=2, scale=SCALE)
        simulator = Simulator(config, design, seed=5)
        first = simulator.run(trace, warmup_fraction=0.3, engine="vector")
        second = simulator.run(trace, warmup_fraction=0.3, engine="vector")
        fresh = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, engine="loop"
        )
        assert first.to_dict() == second.to_dict() == fresh.to_dict()


class TestJobKeyEngine:
    KEY_ARGS = dict(
        design=AccordDesign(kind="pws", ways=2),
        workload="soplex",
        num_accesses=1000,
    )

    def test_engine_never_forks_the_memo_space(self):
        keys = [JobKey(engine=name, **self.KEY_ARGS) for name in ENGINE_NAMES]
        assert len({key.digest() for key in keys}) == 1
        assert all("engine" not in key.canonical() for key in keys)

    def test_engine_is_validated(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            JobKey(engine="warp", **self.KEY_ARGS)

    def test_jobspec_engine_field(self):
        from repro.service.jobspec import expand_spec

        keys, _, _ = expand_spec(
            {"designs": "pws:2", "quick": True, "engine": "vector"}
        )
        assert {key.engine for key in keys} == {"vector"}
        base, _, _ = expand_spec({"designs": "pws:2", "quick": True})
        assert [k.digest() for k in keys] == [k.digest() for k in base]
        with pytest.raises(ConfigError, match="unknown engine"):
            expand_spec({"designs": "pws:2", "engine": "warp"})
        with pytest.raises(ConfigError, match="must be a string"):
            expand_spec({"designs": "pws:2", "engine": 3})


class TestResultDigestProperties:
    """result_digest is an engine-invariant payload fingerprint.

    The trust layer's shadow verification compares digests across
    engines, so the digest must be a pure function of the *answer*
    (stats + phases), identical under every engine, and sensitive to a
    perturbation of any single stats field.
    """

    @pytest.mark.parametrize("engine", ["loop", "stream", "vector", "replay"])
    @pytest.mark.parametrize("design", BENCH_DESIGNS, ids=_design_id)
    def test_digest_engine_invariant(self, design, engine, trace,
                                     loop_reference):
        from repro.verify.digest import payload_digest, result_digest

        ref = loop_reference(design)
        expected = payload_digest(ref["stats"], ref["phases"])
        assert ref["payload_digest"] == expected
        config = scaled_system(ways=design.ways, scale=SCALE)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = Simulator(config, design, seed=5).run(
                trace, warmup_fraction=0.3, epoch=EPOCH, engine=engine
            )
        assert result_digest(result) == expected

    @pytest.mark.parametrize("design", BENCH_DESIGNS, ids=_design_id)
    def test_digest_sensitive_to_every_stats_field(self, design, trace,
                                                   loop_reference):
        from repro.verify.digest import payload_digest

        import copy

        ref = loop_reference(design)
        base = payload_digest(ref["stats"], ref["phases"])

        def leaves(node, path=()):
            if isinstance(node, dict):
                for key, value in node.items():
                    yield from leaves(value, path + (key,))
            elif isinstance(node, (int, float)) and not isinstance(node, bool):
                yield path

        paths = list(leaves(ref["stats"]))
        assert paths  # every design reports at least one counter
        for path in paths:
            perturbed = copy.deepcopy(ref["stats"])
            node = perturbed
            for key in path[:-1]:
                node = node[key]
            node[path[-1]] += 1
            assert payload_digest(perturbed, ref["phases"]) != base, path
