"""Unit tests for repro.utils.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.utils.bitops import bit_field, ceil_div, ilog2, is_pow2, mask, popcount


class TestIsPow2:
    def test_powers(self):
        for exp in range(0, 40):
            assert is_pow2(1 << exp)

    def test_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 100, 1000):
            assert not is_pow2(value)


class TestIlog2:
    def test_exact(self):
        assert ilog2(1) == 0
        assert ilog2(64) == 6
        assert ilog2(1 << 33) == 33

    def test_rejects_non_power(self):
        with pytest.raises(GeometryError):
            ilog2(3)
        with pytest.raises(GeometryError):
            ilog2(0)

    @given(st.integers(min_value=0, max_value=62))
    def test_roundtrip(self, exp):
        assert ilog2(1 << exp) == exp


class TestMask:
    def test_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF

    def test_negative_rejected(self):
        with pytest.raises(GeometryError):
            mask(-1)


class TestBitField:
    def test_extract(self):
        assert bit_field(0b110100, 2, 3) == 0b101
        assert bit_field(0xFF00, 8, 8) == 0xFF

    def test_zero_width(self):
        assert bit_field(0xFFFF, 4, 0) == 0

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=0, max_value=60),
           st.integers(min_value=0, max_value=16))
    def test_bounded(self, value, low, width):
        assert 0 <= bit_field(value, low, width) < (1 << width) or width == 0


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 64) - 1) == 64

    def test_negative_rejected(self):
        with pytest.raises(GeometryError):
            popcount(-5)


class TestCeilDiv:
    def test_exact_and_rounding(self):
        assert ceil_div(8, 4) == 2
        assert ceil_div(9, 4) == 3
        assert ceil_div(0, 4) == 0

    def test_bad_denominator(self):
        with pytest.raises(GeometryError):
            ceil_div(1, 0)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_definition(self, n, d):
        assert ceil_div(n, d) == (n + d - 1) // d
