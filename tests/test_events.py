"""Tests for the access-event stream and the stats-observer equivalence.

The load-bearing test here is the equivalence sweep: for every design
kind, a :class:`StatsObserver` rebuilding `CacheStats` purely from the
event stream must be bit-identical to the cache's own inlined counters
on a mixed read/write trace. The inlined fast path and the event
pipeline are two implementations of one specification; this pins them
together.
"""

import pytest

from repro.cache.dram_cache import DramCache
from repro.cache.events import EvictEvent, FillEvent, LookupEvent, StatsObserver, WritebackEvent
from repro.cache.geometry import CacheGeometry
from repro.cache.lookup import SerialLookup, WayPredictedLookup
from repro.cache.replacement import RandomReplacement
from repro.core.accord import AccordDesign
from repro.core.prediction import StaticPreferredPredictor
from repro.core.steering import DirectMappedSteering, UnbiasedSteering
from repro.params.system import scaled_system
from repro.sim.runner import TraceFactory
from repro.sim.system import build_dram_cache
from repro.utils.rng import XorShift64


class Recorder:
    """Observer that records every event in arrival order."""

    def __init__(self):
        self.events = []

    def on_lookup(self, event):
        self.events.append(event)

    def on_fill(self, event):
        self.events.append(event)

    def on_evict(self, event):
        self.events.append(event)

    def on_writeback(self, event):
        self.events.append(event)


def make_cache(ways=2, lookup=None, predictor="static", dcp="default",
               capacity=8 * 1024):
    geometry = CacheGeometry(capacity, ways)
    if predictor == "static":
        predictor = StaticPreferredPredictor(geometry)
    steering = (
        DirectMappedSteering(geometry) if ways == 1 else UnbiasedSteering(geometry)
    )
    return DramCache(
        geometry,
        lookup=lookup or (SerialLookup() if predictor is None
                          else WayPredictedLookup()),
        steering=steering,
        predictor=predictor,
        replacement=RandomReplacement(XorShift64(3)),
        dcp=dcp,
        prefill=False,
    )


class TestEventStream:
    def test_miss_emits_lookup_then_fill(self):
        cache, recorder = make_cache(), Recorder()
        cache.add_observer(recorder)
        outcome = cache.read(0x1000)
        kinds = [type(e) for e in recorder.events]
        assert kinds == [LookupEvent, FillEvent]
        lookup, fill = recorder.events
        assert not lookup.hit
        assert lookup.addr == 0x1000
        assert fill.addr == 0x1000
        assert fill.way == outcome.way
        assert not fill.dirty

    def test_hit_emits_single_lookup(self):
        cache, recorder = make_cache(), Recorder()
        cache.read(0x1000)
        cache.add_observer(recorder)
        outcome = cache.read(0x1000)
        (event,) = recorder.events
        assert isinstance(event, LookupEvent)
        assert event.hit
        assert event.way == outcome.way
        assert event.predicted_way is not None  # way-predicted lookup

    def test_conflict_emits_evict_between_lookup_and_fill(self):
        cache, recorder = make_cache(ways=1, predictor=None), Recorder()
        span = cache.geometry.way_span_bytes()
        cache.read(0x0)
        cache.add_observer(recorder)
        cache.read(span)  # same set, different tag: evicts 0x0
        kinds = [type(e) for e in recorder.events]
        assert kinds == [LookupEvent, EvictEvent, FillEvent]
        evict = recorder.events[1]
        assert evict.victim_tag == cache.geometry.split(0x0)[1]
        assert not evict.dirty

    def test_dirty_eviction_flagged(self):
        cache, recorder = make_cache(ways=1, predictor=None), Recorder()
        span = cache.geometry.way_span_bytes()
        cache.read(0x0)
        cache.writeback(0x0)
        cache.add_observer(recorder)
        cache.read(span)
        evict = [e for e in recorder.events if isinstance(e, EvictEvent)][0]
        assert evict.dirty

    def test_absorbed_writeback_event(self):
        cache, recorder = make_cache(), Recorder()
        cache.read(0x3000)
        cache.add_observer(recorder)
        assert cache.writeback(0x3000)
        (event,) = recorder.events
        assert isinstance(event, WritebackEvent)
        assert event.absorbed and event.dcp_hit
        assert event.probes == 0
        assert event.way == cache.resident_way(0x3000)

    def test_bypassed_writeback_event(self):
        cache, recorder = make_cache(), Recorder()
        cache.add_observer(recorder)
        assert not cache.writeback(0x4000)
        (event,) = recorder.events
        assert not event.absorbed
        assert event.bypassed_by_dcp  # exact DCP: miss proves absence
        assert event.probes == 0 and event.way is None

    def test_probed_writeback_event(self):
        cache, recorder = make_cache(dcp=None), Recorder()
        cache.read(0x3000)
        cache.add_observer(recorder)
        assert cache.writeback(0x3000)
        (event,) = recorder.events
        assert event.absorbed and not event.dcp_hit
        assert 1 <= event.probes <= cache.geometry.ways

    def test_remove_observer_stops_events(self):
        cache, recorder = make_cache(), Recorder()
        cache.add_observer(recorder)
        assert recorder in cache.observers
        cache.remove_observer(recorder)
        assert cache.observers == ()
        cache.read(0x1000)
        assert recorder.events == []
        cache.remove_observer(recorder)  # second removal is a no-op

    def test_multiple_observers_see_same_stream(self):
        cache = make_cache()
        first, second = Recorder(), Recorder()
        cache.add_observer(first)
        cache.add_observer(second)
        cache.read(0x1000)
        cache.writeback(0x1000)
        assert first.events == second.events


# Every design kind with an event-emitting access path ("ca" is the
# probe-less column-associative baseline and has no observer surface),
# plus the DCP and replacement variants that exercise different flows.
EQUIV_DESIGNS = [
    AccordDesign("direct", ways=1),
    AccordDesign("parallel", ways=2),
    AccordDesign("serial", ways=4),
    AccordDesign("unbiased", ways=2),
    AccordDesign("pws", ways=2),
    AccordDesign("gws", ways=2),
    AccordDesign("accord", ways=2),
    AccordDesign("accord", ways=2, dcp="finite"),
    AccordDesign("accord", ways=2, dcp="none"),
    AccordDesign("accord", ways=2, replacement="lru"),
    AccordDesign("sws", ways=8, hashes=2),
    AccordDesign("dueling", ways=2),
    AccordDesign("mru", ways=2),
    AccordDesign("partial_tag", ways=2),
    AccordDesign("perfect", ways=2),
    AccordDesign("ideal", ways=2),
]


def _design_id(design):
    return f"{design.kind}-{design.ways}w-{design.dcp}-{design.replacement}"


@pytest.fixture(scope="module")
def mixed_setup():
    """One small mixed read/write trace shared by the equivalence sweep."""
    config = scaled_system(ways=1, scale=1.0 / 2048.0)
    trace = TraceFactory(config, 4000, seed=11).trace_for("soplex")
    assert any(trace.writes), "equivalence needs a mixed trace"
    return config, trace


def _replay(cache, trace):
    for addr, is_write in zip(trace.addrs, trace.writes):
        if is_write:
            cache.writeback(addr)
        else:
            cache.read(addr)


class TestStatsEquivalence:
    @pytest.mark.parametrize("design", EQUIV_DESIGNS, ids=_design_id)
    def test_observer_stats_match_inline_counters(self, design, mixed_setup):
        config, trace = mixed_setup
        cache = build_dram_cache(design, config, seed=3)
        shadow = StatsObserver()
        cache.add_observer(shadow)
        _replay(cache, trace)
        assert shadow.stats.to_dict() == cache.stats.to_dict()

    @pytest.mark.parametrize("design", [
        AccordDesign("accord", ways=2),
        AccordDesign("sws", ways=8, hashes=2),
        AccordDesign("unbiased", ways=2),
    ], ids=_design_id)
    def test_observers_do_not_perturb_the_simulation(self, design, mixed_setup):
        config, trace = mixed_setup
        bare = build_dram_cache(design, config, seed=3)
        observed = build_dram_cache(design, config, seed=3)
        observed.add_observer(StatsObserver())
        _replay(bare, trace)
        _replay(observed, trace)
        assert bare.stats.to_dict() == observed.stats.to_dict()
