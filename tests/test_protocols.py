"""Tests for the runtime-checkable policy protocols (repro.core.protocols)."""

import pytest

from repro.cache.dcp import DcpDirectory, FiniteDcpDirectory
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import (
    LruReplacement,
    NruReplacement,
    RandomReplacement,
)
from repro.core.accord import DESIGN_KINDS, AccordDesign, make_design
from repro.core.dueling import DuelingPwsSteering
from repro.core.gws import GangedWayPredictor, GangedWaySteering
from repro.core.prediction import (
    MruPredictor,
    PartialTagPredictor,
    RandomPredictor,
    StaticPreferredPredictor,
)
from repro.core.protocols import (
    DcpDirectoryPolicy,
    InstallSteeringPolicy,
    ReplacementPolicy,
    WayPredictorPolicy,
    ensure_policy_conformance,
)
from repro.core.pws import ProbabilisticWaySteering
from repro.core.steering import DirectMappedSteering, UnbiasedSteering
from repro.core.sws import SkewedWaySteering
from repro.errors import PolicyError
from repro.utils.rng import XorShift64

GEOMETRY = CacheGeometry(8 * 1024, 2)


class TestSteeringConformance:
    @pytest.mark.parametrize("factory", [
        lambda g: DirectMappedSteering(g.with_ways(1)),
        UnbiasedSteering,
        lambda g: ProbabilisticWaySteering(g, rng=XorShift64(1)),
        lambda g: GangedWaySteering(g, fallback=UnbiasedSteering(g)),
        lambda g: SkewedWaySteering(g, rng=XorShift64(2)),
        lambda g: DuelingPwsSteering(g, rng=XorShift64(3)),
    ])
    def test_conforms(self, factory):
        assert isinstance(factory(GEOMETRY), InstallSteeringPolicy)

    def test_non_policy_rejected(self):
        class NotSteering:
            def candidate_ways(self, set_index, tag):
                return range(2)

        assert not isinstance(NotSteering(), InstallSteeringPolicy)


class TestPredictorConformance:
    @pytest.mark.parametrize("factory", [
        lambda g: RandomPredictor(g, XorShift64(1)),
        StaticPreferredPredictor,
        MruPredictor,
        PartialTagPredictor,
        lambda g: GangedWayPredictor(g, fallback=StaticPreferredPredictor(g)),
    ])
    def test_conforms(self, factory):
        assert isinstance(factory(GEOMETRY), WayPredictorPolicy)

    def test_perfect_predictor_conforms(self):
        # The oracle needs a live store; grab it from an assembled cache.
        cache = make_design(AccordDesign("perfect", ways=2), GEOMETRY)
        assert isinstance(cache.predictor, WayPredictorPolicy)


class TestReplacementConformance:
    @pytest.mark.parametrize("factory", [
        lambda: RandomReplacement(XorShift64(1)),
        lambda: LruReplacement(GEOMETRY),
        lambda: NruReplacement(GEOMETRY),
    ])
    def test_conforms(self, factory):
        assert isinstance(factory(), ReplacementPolicy)


class TestDcpConformance:
    @pytest.mark.parametrize("factory", [DcpDirectory, FiniteDcpDirectory])
    def test_conforms(self, factory):
        assert isinstance(factory(), DcpDirectoryPolicy)

    def test_authoritative_is_declared_not_guessed(self):
        # The protocol demands the attribute; a map without it is not a
        # DCP even if it has the right methods (the old getattr default
        # would silently have treated it as authoritative).
        class BareMap:
            def lookup(self, line_addr):
                return None

            def insert(self, line_addr, way):
                pass

            def remove(self, line_addr):
                pass

            def hit_rate(self):
                return 0.0

        assert not isinstance(BareMap(), DcpDirectoryPolicy)


class TestEnsureConformance:
    @pytest.mark.parametrize("kind", [k for k in DESIGN_KINDS if k != "ca"])
    def test_every_assembled_design_passes(self, kind):
        ways = 1 if kind == "direct" else 2
        cache = make_design(AccordDesign(kind, ways=ways), GEOMETRY)
        ensure_policy_conformance(cache)  # must not raise

    def test_missing_required_role_raises(self):
        cache = make_design(AccordDesign("serial", ways=2), GEOMETRY)
        cache.replacement = None
        with pytest.raises(PolicyError, match="replacement"):
            ensure_policy_conformance(cache)

    def test_nonconforming_dcp_raises(self):
        cache = make_design(AccordDesign("serial", ways=2), GEOMETRY)
        cache.dcp = object()
        with pytest.raises(PolicyError, match="dcp"):
            ensure_policy_conformance(cache)

    def test_optional_roles_may_be_none(self):
        cache = make_design(
            AccordDesign("serial", ways=2, dcp="none"), GEOMETRY
        )
        assert cache.predictor is None and cache.dcp is None
        ensure_policy_conformance(cache)  # must not raise
