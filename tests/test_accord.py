"""Tests for the ACCORD factory and end-to-end policy behaviour."""

import pytest

from repro.cache.ca_cache import ColumnAssociativeCache
from repro.cache.dram_cache import DramCache
from repro.cache.geometry import CacheGeometry
from repro.core.accord import AccordDesign, make_accord, make_design
from repro.core.gws import GangedWayPredictor, GangedWaySteering
from repro.core.sws import SkewedWaySteering
from repro.errors import PolicyError


@pytest.fixture
def geom():
    return CacheGeometry(64 * 1024, 2)


class TestFactory:
    @pytest.mark.parametrize("kind,ways", [
        ("direct", 1), ("parallel", 2), ("serial", 2), ("ideal", 4),
        ("unbiased", 2), ("pws", 2), ("gws", 2), ("accord", 2),
        ("sws", 8), ("mru", 2), ("partial_tag", 2), ("perfect", 2),
    ])
    def test_all_kinds_build_and_run(self, kind, ways):
        design = AccordDesign(kind=kind, ways=ways)
        geometry = CacheGeometry(64 * 1024, ways)
        cache = make_design(design, geometry, seed=3)
        for i in range(200):
            cache.read(i * 64 % (16 * 1024))
        assert cache.stats.demand_reads == 200
        assert cache.stats.hits + cache.stats.misses == 200

    def test_ca_kind(self):
        cache = make_design(AccordDesign(kind="ca", ways=1), CacheGeometry(64 * 1024, 1))
        assert isinstance(cache, ColumnAssociativeCache)

    def test_unknown_kind_rejected(self, geom):
        with pytest.raises(PolicyError):
            make_design(AccordDesign(kind="bogus", ways=2), geom)

    def test_direct_requires_one_way(self, geom):
        with pytest.raises(PolicyError):
            make_design(AccordDesign(kind="direct", ways=2), geom)

    def test_geometry_reshaped_to_design(self):
        design = AccordDesign(kind="accord", ways=2)
        cache = make_design(design, CacheGeometry(64 * 1024, 1))
        assert cache.geometry.ways == 2

    def test_display_names(self):
        assert AccordDesign(kind="sws", ways=8).display_name == "ACCORD SWS(8,2)"
        assert AccordDesign(kind="accord", ways=2).display_name == "ACCORD 2-way"
        assert AccordDesign(kind="pws", ways=2, label="X").display_name == "X"


class TestMakeAccord:
    def test_wiring(self, geom):
        cache = make_accord(geom)
        assert isinstance(cache, DramCache)
        assert isinstance(cache.steering, GangedWaySteering)
        assert isinstance(cache.predictor, GangedWayPredictor)
        assert cache.storage_overhead_bits() == 2 * 64 * 20  # 320 bytes

    def test_sws_wiring(self):
        geometry = CacheGeometry(256 * 1024, 8)
        cache = make_accord(geometry, use_sws=True, hashes=2)
        assert isinstance(cache.steering.fallback, SkewedWaySteering)
        # Miss confirmation is capped at 2 candidate ways.
        assert len(cache.steering.candidate_ways(0, 1234)) == 2


class TestAccordBehaviour:
    def test_spatial_stream_predicts_nearly_perfectly(self, geom):
        """A region-streaming workload is GWS's best case."""
        cache = make_accord(geom, rng=None)
        # 12 pages x 64 lines = 768 lines fit the 1024-line cache.
        for page in range(12):
            for line in range(64):
                cache.read(page * 4096 + line * 64)
        # Second pass over the same pages: hits with high accuracy.
        cache.stats.__init__()
        for page in range(8):
            for line in range(64):
                cache.read(page * 4096 + line * 64)
        assert cache.stats.prediction_accuracy > 0.95

    def test_conflict_pair_coresides_eventually(self):
        """The (a,b)^N kernel: ACCORD keeps both lines resident."""
        geometry = CacheGeometry(8 * 1024, 2)
        cache = make_accord(geometry)
        a, b = 0, 8 * 1024  # same set in any organization of this capacity
        for _ in range(256):
            cache.read(a)
            cache.read(b)
        assert cache.stats.hit_rate > 0.7  # direct-mapped would be 0

    def test_ideal_lookup_costs(self):
        geometry = CacheGeometry(64 * 1024, 8)
        cache = make_design(AccordDesign(kind="ideal", ways=8), geometry)
        for i in range(100):
            cache.read(i * 64)
        stats = cache.stats
        assert stats.cache_read_transfers == stats.demand_reads
        assert stats.extra_probes == 0
