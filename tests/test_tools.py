"""Tests for the trace-generation and profiling CLI tools."""

import os

from repro.sim.trace import load_trace
from repro.tools.make_traces import main as make_traces_main, make_traces
from repro.tools.profile_trace import main as profile_main


class TestMakeTraces:
    def test_generates_files(self, tmp_path):
        paths = make_traces(["sphinx"], str(tmp_path), num_accesses=2000)
        assert len(paths) == 1
        trace = load_trace(paths[0])
        assert len(trace) >= 2000
        assert trace.name == "sphinx"

    def test_mix_supported(self, tmp_path):
        paths = make_traces(["mix1"], str(tmp_path), num_accesses=2000)
        trace = load_trace(paths[0])
        assert trace.name == "mix1"

    def test_cli(self, tmp_path, capsys):
        out_dir = str(tmp_path / "t")
        assert make_traces_main(
            ["sphinx", "--out", out_dir, "--accesses", "1000"]
        ) == 0
        printed = capsys.readouterr().out.strip()
        assert printed.endswith("sphinx.trace")
        assert os.path.exists(printed)


class TestProfileTrace:
    def test_cli_profiles(self, tmp_path, capsys):
        paths = make_traces(["libq"], str(tmp_path), num_accesses=3000)
        assert profile_main([paths[0], "--no-reuse"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out
        assert "run length" in out

    def test_cli_runs_histogram(self, tmp_path, capsys):
        paths = make_traces(["libq"], str(tmp_path), num_accesses=3000)
        assert profile_main([paths[0], "--no-reuse", "--runs-histogram"]) == 0
        out = capsys.readouterr().out
        assert "run-length distribution" in out
