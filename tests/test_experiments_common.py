"""Tests for the shared experiment machinery (Settings, parse_args)."""

import pytest

from repro.experiments.common import (
    Settings,
    SuiteRunner,
    baseline_design,
    parse_args,
)
from repro.workloads.spec import main_suite


class TestSettings:
    def test_defaults(self):
        settings = Settings()
        assert settings.num_accesses == 200_000
        assert settings.suite == main_suite()
        assert 0.0 <= settings.warmup < 1.0

    def test_quick_shrinks(self):
        quick = Settings().quick()
        assert quick.num_accesses < Settings().num_accesses
        assert len(quick.suite) < len(main_suite())

    def test_quick_does_not_mutate_original(self):
        settings = Settings()
        settings.quick()
        assert settings.num_accesses == 200_000


class TestParseArgs:
    def test_defaults(self):
        settings = parse_args("d", [])
        assert settings.num_accesses == 200_000
        assert settings.seed == 7

    def test_accesses_and_seed(self):
        settings = parse_args("d", ["--accesses", "5000", "--seed", "3"])
        assert settings.num_accesses == 5000
        assert settings.seed == 3

    def test_quick_flag(self):
        settings = parse_args("d", ["--quick"])
        assert len(settings.suite) == 4

    def test_explicit_accesses_wins_over_quick(self):
        settings = parse_args("d", ["--quick", "--accesses", "123456"])
        assert settings.num_accesses == 123456
        assert len(settings.suite) == 4  # quick suite still applies

    def test_workloads_subset(self):
        settings = parse_args("d", ["--workloads", "soplex,mcf,mix3"])
        assert settings.suite == ["soplex", "mcf", "mix3"]

    def test_workloads_override_quick_suite(self):
        settings = parse_args("d", ["--quick", "--workloads", "libq"])
        assert settings.suite == ["libq"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            parse_args("d", ["--workloads", "not_a_workload"])

    def test_scale(self):
        settings = parse_args("d", ["--scale", "0.0078125"])
        assert settings.scale == 0.0078125
        with pytest.raises(SystemExit):
            parse_args("d", ["--scale", "2.0"])

    def test_executor_flags(self):
        settings = parse_args(
            "d", ["-j", "4", "--results-dir", "/tmp/x", "--no-store"]
        )
        assert settings.jobs == 4
        assert settings.results_dir == "/tmp/x"
        assert settings.use_store is False
        with pytest.raises(SystemExit):
            parse_args("d", ["-j", "0"])


class TestSuiteRunnerExecution:
    def settings(self, tmp_path, jobs=1):
        return Settings(
            num_accesses=3000,
            suite=["soplex", "libq"],
            jobs=jobs,
            results_dir=str(tmp_path),
        )

    def test_parallel_matches_serial(self, tmp_path):
        serial = SuiteRunner(self.settings(tmp_path / "a"))
        parallel = SuiteRunner(self.settings(tmp_path / "b", jobs=2))
        design = baseline_design()
        left = serial.run("direct", design)
        right = parallel.run("direct", design)
        assert {w: r.to_dict() for w, r in left.items()} == \
               {w: r.to_dict() for w, r in right.items()}

    def test_warm_restart_skips_simulation(self, tmp_path):
        design = baseline_design()
        cold = SuiteRunner(self.settings(tmp_path))
        cold.run("direct", design)
        assert cold.executor.stats.executed == 2

        warm = SuiteRunner(self.settings(tmp_path))
        warm.run("direct", design)
        assert warm.executor.stats.executed == 0
        assert warm.executor.stats.cached == 2

    def test_store_disabled(self, tmp_path):
        settings = self.settings(tmp_path)
        settings.use_store = False
        runner = SuiteRunner(settings)
        runner.run("direct", baseline_design())
        assert runner.executor.store is None
        rerun = SuiteRunner(settings)
        rerun.run("direct", baseline_design())
        assert rerun.executor.stats.executed == 2


class TestBaseline:
    def test_baseline_is_direct_mapped(self):
        design = baseline_design()
        assert design.kind == "direct"
        assert design.ways == 1
