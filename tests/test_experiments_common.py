"""Tests for the shared experiment machinery (Settings, parse_args)."""

import pytest

from repro.experiments.common import Settings, baseline_design, parse_args
from repro.workloads.spec import main_suite


class TestSettings:
    def test_defaults(self):
        settings = Settings()
        assert settings.num_accesses == 200_000
        assert settings.suite == main_suite()
        assert 0.0 <= settings.warmup < 1.0

    def test_quick_shrinks(self):
        quick = Settings().quick()
        assert quick.num_accesses < Settings().num_accesses
        assert len(quick.suite) < len(main_suite())

    def test_quick_does_not_mutate_original(self):
        settings = Settings()
        settings.quick()
        assert settings.num_accesses == 200_000


class TestParseArgs:
    def test_defaults(self):
        settings = parse_args("d", [])
        assert settings.num_accesses == 200_000
        assert settings.seed == 7

    def test_accesses_and_seed(self):
        settings = parse_args("d", ["--accesses", "5000", "--seed", "3"])
        assert settings.num_accesses == 5000
        assert settings.seed == 3

    def test_quick_flag(self):
        settings = parse_args("d", ["--quick"])
        assert len(settings.suite) == 4


class TestBaseline:
    def test_baseline_is_direct_mapped(self):
        design = baseline_design()
        assert design.kind == "direct"
        assert design.ways == 1
