"""Integration tests: paper-level claims verified end-to-end on small
configurations.

These are the "does the reproduction reproduce" tests: each asserts a
qualitative result from the paper using the real stack (generator ->
cache -> timing model), at sizes small enough for CI.
"""

import pytest

from repro.core.accord import AccordDesign
from repro.cache.geometry import CacheGeometry
from repro.core.accord import make_design
from repro.params.system import scaled_system
from repro.sim.runner import TraceFactory, run_suite, speedups_vs_baseline
from repro.sim.runner import geometric_mean, mean_hit_rate, mean_prediction_accuracy
from repro.workloads.cyclic import cyclic_trace, same_preferred_conflicting_addresses

SCALE = 1.0 / 512.0  # 8MB cache
ACCESSES = 60_000
SUITE = ["soplex", "libq", "mcf", "sphinx", "leslie"]


@pytest.fixture(scope="module")
def runs():
    """Run the key designs once over a mini-suite; share across tests."""
    config = scaled_system(ways=1, scale=SCALE)
    traces = TraceFactory(config, ACCESSES, seed=11)
    designs = {
        "direct": AccordDesign(kind="direct", ways=1),
        "unbiased2": AccordDesign(kind="unbiased", ways=2),
        "pws": AccordDesign(kind="pws", ways=2),
        "accord": AccordDesign(kind="accord", ways=2),
        "perfect": AccordDesign(kind="perfect", ways=2),
        "parallel8": AccordDesign(kind="parallel", ways=8),
        "ideal8": AccordDesign(kind="ideal", ways=8),
        "sws82": AccordDesign(kind="sws", ways=8, hashes=2),
        "lru2": AccordDesign(kind="unbiased", ways=2, replacement="lru"),
    }
    results = {}
    for name, design in designs.items():
        config_d = scaled_system(ways=design.ways, scale=SCALE)
        results[name] = run_suite(
            design, SUITE, config=config_d, traces=traces,
            num_accesses=ACCESSES, warmup=0.5, seed=11,
        )
    return results


def gmean_speedup(runs, label):
    return geometric_mean(speedups_vs_baseline(runs[label], runs["direct"]).values())


class TestPaperClaims:
    def test_associativity_raises_hit_rate(self, runs):
        """Figure 1a: hit-rate rises monotonically with associativity."""
        assert (
            mean_hit_rate(runs["direct"])
            < mean_hit_rate(runs["unbiased2"])
            <= mean_hit_rate(runs["ideal8"]) + 0.005
        )

    def test_idealized_beats_parallel(self, runs):
        """Figure 1b/c: same hit-rate, but parallel pays bandwidth."""
        assert gmean_speedup(runs, "ideal8") > gmean_speedup(runs, "parallel8")

    def test_parallel_8way_degrades(self, runs):
        """Figure 1b: 8-way parallel lookup loses to direct-mapped."""
        assert gmean_speedup(runs, "parallel8") < 1.0

    def test_pws_accuracy_tracks_pip(self, runs):
        """Table V: PWS prediction accuracy ~= PIP (85%)."""
        accuracy = mean_prediction_accuracy(runs["pws"])
        assert 0.80 < accuracy < 0.90

    def test_pws_hit_rate_close_to_unbiased(self, runs):
        """Table V: PWS trades only a little hit-rate."""
        assert mean_hit_rate(runs["pws"]) > mean_hit_rate(runs["unbiased2"]) - 0.02

    def test_accord_accuracy_beats_pws(self, runs):
        """Figure 7: adding GWS raises accuracy above PWS alone."""
        assert (
            mean_prediction_accuracy(runs["accord"])
            > mean_prediction_accuracy(runs["pws"])
        )

    def test_accord_speedup_positive_and_near_perfect(self, runs):
        """Figure 10: ACCORD gains and sits near the perfect-WP bound."""
        accord = gmean_speedup(runs, "accord")
        perfect = gmean_speedup(runs, "perfect")
        assert accord > 1.0
        assert accord > 0.6 * (perfect - 1.0) + 1.0 - 0.005

    def test_sws_beats_2way_accord(self, runs):
        """Figure 13 / Table VII: SWS(8,2) adds hit-rate and speedup."""
        assert mean_hit_rate(runs["sws82"]) > mean_hit_rate(runs["accord"])
        assert gmean_speedup(runs, "sws82") > gmean_speedup(runs, "accord")

    def test_sws_hit_rate_below_full_8way(self, runs):
        """Table VII: SWS(8,2) cannot exceed a full 8-way cache."""
        assert mean_hit_rate(runs["sws82"]) <= mean_hit_rate(runs["ideal8"]) + 0.005

    def test_lru_worse_than_random(self, runs):
        """Section II-B.4: replacement-state writes make LRU a net loss."""
        assert gmean_speedup(runs, "lru2") < gmean_speedup(runs, "unbiased2")

    def test_accord_storage_is_320_bytes(self):
        """Table IX at any geometry with 64-entry tables."""
        geometry = CacheGeometry(32 * 1024 * 1024, 2)
        cache = make_design(AccordDesign(kind="accord", ways=2), geometry)
        assert cache.storage_overhead_bits() == 320 * 8


class TestCyclicKernelEndToEnd:
    """Figure 6 behaviour on the real cache."""

    CAPACITY = 1 << 20

    def _run(self, kind, iterations, ways=2, pip=0.85, seed=1):
        addresses = same_preferred_conflicting_addresses(self.CAPACITY, 2, 2)
        trace = cyclic_trace(addresses, iterations)
        geometry = CacheGeometry(self.CAPACITY, ways)
        design = AccordDesign(kind=kind, ways=ways, pip=pip)
        cache = make_design(design, geometry, seed=seed)
        for addr in trace.addrs:
            cache.read(addr)
        return cache.stats.hit_rate

    def test_direct_mapped_thrashes(self):
        assert self._run("direct", 64, ways=1) == 0.0

    def test_pws_learns_both_ways(self):
        rates = [self._run("pws", n, seed=3) for n in (4, 128)]
        assert rates[1] > rates[0]
        assert rates[1] > 0.8

    def test_higher_pip_learns_slower(self):
        low = sum(self._run("pws", 8, pip=0.6, seed=s) for s in range(8))
        high = sum(self._run("pws", 8, pip=0.95, seed=s) for s in range(8))
        assert high < low
