"""Tests for primitive access patterns and phase composition."""

import pytest

from repro.errors import WorkloadError
from repro.utils.rng import XorShift64
from repro.workloads.patterns import (
    HotColdPattern,
    Phase,
    PhasedWorkload,
    PointerChasePattern,
    ScanPattern,
    StreamPattern,
    interleave,
)


@pytest.fixture
def rng():
    return XorShift64(3)


class TestStream:
    def test_sequential(self, rng):
        pattern = StreamPattern(base=0, size_bytes=1024)
        addrs = [pattern.next_access(rng)[0] for _ in range(4)]
        assert addrs == [0, 64, 128, 192]

    def test_wraps(self, rng):
        pattern = StreamPattern(base=0, size_bytes=128)
        addrs = [pattern.next_access(rng)[0] for _ in range(4)]
        assert addrs == [0, 64, 0, 64]

    def test_stride(self, rng):
        pattern = StreamPattern(base=0, size_bytes=1024, stride_lines=4)
        addrs = [pattern.next_access(rng)[0] for _ in range(2)]
        assert addrs == [0, 256]

    def test_writes(self, rng):
        pattern = StreamPattern(base=0, size_bytes=1024, write_every=2)
        flags = [pattern.next_access(rng)[1] for _ in range(4)]
        assert flags == [False, True, False, True]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            StreamPattern(base=0, size_bytes=32)
        with pytest.raises(WorkloadError):
            StreamPattern(base=0, size_bytes=1024, stride_lines=0)


class TestPointerChase:
    def test_no_spatial_locality(self, rng):
        pattern = PointerChasePattern(base=0, num_nodes=4096, seed=2)
        addrs = [pattern.next_access(rng)[0] for _ in range(200)]
        sequential = sum(
            1 for i in range(1, 200) if addrs[i] == addrs[i - 1] + 64
        )
        assert sequential < 5

    def test_deterministic_chain(self, rng):
        a = PointerChasePattern(base=0, num_nodes=256, seed=9)
        b = PointerChasePattern(base=0, num_nodes=256, seed=9)
        assert [a.next_access(rng)[0] for _ in range(20)] == [
            b.next_access(rng)[0] for _ in range(20)
        ]

    def test_stays_in_bounds(self, rng):
        pattern = PointerChasePattern(base=4096, num_nodes=16, seed=1)
        for _ in range(100):
            addr, _ = pattern.next_access(rng)
            assert 4096 <= addr < 4096 + 16 * 64

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PointerChasePattern(base=0, num_nodes=1)


class TestHotCold:
    def test_hot_bias(self, rng):
        pattern = HotColdPattern(
            base=0, footprint_bytes=1 << 20, hot_bytes=4096, hot_fraction=0.9
        )
        hot_hits = 0
        for _ in range(2000):
            addr, _ = pattern.next_access(rng)
            if addr < 4096:
                hot_hits += 1
        assert hot_hits / 2000 > 0.85

    def test_writes(self, rng):
        pattern = HotColdPattern(
            base=0, footprint_bytes=1 << 16, hot_bytes=4096, write_frac=0.5
        )
        writes = sum(pattern.next_access(rng)[1] for _ in range(2000))
        assert 0.4 < writes / 2000 < 0.6

    def test_validation(self):
        with pytest.raises(WorkloadError):
            HotColdPattern(base=0, footprint_bytes=1024, hot_bytes=4096)
        with pytest.raises(WorkloadError):
            HotColdPattern(base=0, footprint_bytes=1 << 16, hot_bytes=64,
                           hot_fraction=1.5)


class TestScan:
    def test_covers_page_then_moves(self, rng):
        pattern = ScanPattern(base=0, num_pages=2)
        addrs = [pattern.next_access(rng)[0] for _ in range(65)]
        assert addrs[0] == 0
        assert addrs[63] == 63 * 64
        assert addrs[64] == 4096  # next page

    def test_wraps_pages(self, rng):
        pattern = ScanPattern(base=0, num_pages=1)
        addrs = [pattern.next_access(rng)[0] for _ in range(65)]
        assert addrs[64] == 0


class TestPhasedWorkload:
    def test_phases_concatenate(self):
        workload = PhasedWorkload(
            [
                Phase(StreamPattern(0, 4096), accesses=10),
                Phase(ScanPattern(1 << 20, 4), accesses=5),
            ],
            seed=1,
        )
        trace = workload.generate()
        assert len(trace) == 15
        assert trace.addrs[0] < 4096
        assert trace.addrs[10] >= 1 << 20

    def test_repeats(self):
        workload = PhasedWorkload([Phase(StreamPattern(0, 4096), 10)])
        assert len(workload.generate(repeats=3)) == 30

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PhasedWorkload([])
        with pytest.raises(WorkloadError):
            Phase(StreamPattern(0, 4096), accesses=0)
        with pytest.raises(WorkloadError):
            PhasedWorkload([Phase(StreamPattern(0, 4096), 1)]).generate(repeats=0)


class TestInterleave:
    def test_mixes_sources(self):
        trace = interleave(
            [StreamPattern(0, 4096), StreamPattern(1 << 20, 4096)],
            total_accesses=400,
            seed=5,
        )
        low = sum(1 for a in trace.addrs if a < 1 << 20)
        assert 100 < low < 300  # roughly balanced

    def test_weights_respected(self):
        trace = interleave(
            [StreamPattern(0, 4096), StreamPattern(1 << 20, 4096)],
            total_accesses=1000,
            weights=[9, 1],
            seed=5,
        )
        low = sum(1 for a in trace.addrs if a < 1 << 20)
        assert low > 800

    def test_validation(self):
        with pytest.raises(WorkloadError):
            interleave([], 10)
        with pytest.raises(WorkloadError):
            interleave([StreamPattern(0, 4096)], 0)
        with pytest.raises(WorkloadError):
            interleave([StreamPattern(0, 4096)], 10, weights=[1, 2])

    def test_runs_through_cache(self):
        """Phase traces plug into the normal cache stack."""
        from repro.cache.geometry import CacheGeometry
        from repro.core.accord import AccordDesign, make_design

        trace = interleave(
            [ScanPattern(0, 8), PointerChasePattern(1 << 22, 1024, seed=3)],
            total_accesses=2000,
            seed=5,
        )
        cache = make_design(
            AccordDesign(kind="accord", ways=2), CacheGeometry(1 << 20, 2)
        )
        for addr, is_write in zip(trace.addrs, trace.writes):
            if is_write:
                cache.writeback(addr)
            else:
                cache.read(addr)
        assert cache.stats.demand_reads > 0
