"""Tests for cache-state checkpointing."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.accord import AccordDesign, make_design
from repro.errors import SimulationError
from repro.sim.checkpoint import CacheCheckpoint


def warmed_cache(seed=3):
    cache = make_design(
        AccordDesign(kind="accord", ways=2), CacheGeometry(256 * 1024, 2), seed=seed
    )
    for i in range(3000):
        cache.read((i * 7 % 2000) * 64)
        if i % 5 == 0:
            cache.writeback((i * 7 % 2000) * 64)
    return cache


class TestCaptureRestore:
    def test_roundtrip_preserves_residency(self):
        source = warmed_cache()
        checkpoint = CacheCheckpoint.capture(source)
        target = make_design(
            AccordDesign(kind="accord", ways=2), CacheGeometry(256 * 1024, 2), seed=9
        )
        restored = checkpoint.restore(target)
        assert restored == len(checkpoint.entries) > 0
        # Every line resident in the source is resident in the target,
        # in the same way, with the same dirty bit.
        for set_index, way, tag, dirty in checkpoint.entries:
            assert target.store.tag_at(set_index, way) == tag
            assert target.store.is_dirty(set_index, way) == bool(dirty)

    def test_junk_lines_excluded(self):
        cache = make_design(
            AccordDesign(kind="accord", ways=2), CacheGeometry(64 * 1024, 2)
        )
        cache.read(0)
        checkpoint = CacheCheckpoint.capture(cache)
        assert len(checkpoint.entries) == 1  # only the real line

    def test_dcp_rebuilt(self):
        source = warmed_cache()
        checkpoint = CacheCheckpoint.capture(source)
        target = make_design(
            AccordDesign(kind="accord", ways=2), CacheGeometry(256 * 1024, 2)
        )
        checkpoint.restore(target)
        set_index, way, tag, _ = checkpoint.entries[0]
        addr = target.geometry.addr_of(set_index, tag)
        # A writeback to a restored line must not bypass.
        assert target.writeback(addr)

    def test_geometry_mismatch_rejected(self):
        checkpoint = CacheCheckpoint.capture(warmed_cache())
        other = make_design(
            AccordDesign(kind="accord", ways=2), CacheGeometry(128 * 1024, 2)
        )
        with pytest.raises(SimulationError):
            checkpoint.restore(other)

    def test_warm_start_improves_hit_rate(self):
        source = warmed_cache()
        checkpoint = CacheCheckpoint.capture(source)
        cold = make_design(
            AccordDesign(kind="accord", ways=2), CacheGeometry(256 * 1024, 2), seed=4
        )
        warm = make_design(
            AccordDesign(kind="accord", ways=2), CacheGeometry(256 * 1024, 2), seed=4
        )
        checkpoint.restore(warm)
        for i in range(2000):
            addr = (i * 7 % 2000) * 64
            cold.read(addr)
            warm.read(addr)
        assert warm.stats.hit_rate > cold.stats.hit_rate


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        checkpoint = CacheCheckpoint.capture(warmed_cache())
        path = str(tmp_path / "cache.ckpt")
        checkpoint.save(path)
        loaded = CacheCheckpoint.load(path)
        assert loaded.entries == checkpoint.entries
        assert loaded.capacity_bytes == checkpoint.capacity_bytes

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(SimulationError):
            CacheCheckpoint.load(str(path))
