"""Unit tests for way predictors."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.storage import TagStore
from repro.core.prediction import (
    MruPredictor,
    PartialTagPredictor,
    PerfectPredictor,
    RandomPredictor,
    StaticPreferredPredictor,
)
from repro.core.steering import preferred_way
from repro.utils.rng import XorShift64


@pytest.fixture
def geom():
    return CacheGeometry(16 * 1024, 4)


class TestRandom:
    def test_range_and_spread(self, geom):
        predictor = RandomPredictor(geom, XorShift64(1))
        seen = {predictor.predict(0, 0, 0) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_zero_storage(self, geom):
        assert RandomPredictor(geom).storage_bits() == 0


class TestStaticPreferred:
    def test_matches_preferred_way(self, geom):
        predictor = StaticPreferredPredictor(geom)
        for tag in range(100):
            assert predictor.predict(0, tag, 0) == preferred_way(tag, 4)

    def test_zero_storage(self, geom):
        assert StaticPreferredPredictor(geom).storage_bits() == 0


class TestMru:
    def test_tracks_hits(self, geom):
        predictor = MruPredictor(geom)
        predictor.on_access(5, 1, 0, way=3, hit=True)
        assert predictor.predict(5, 99, 0) == 3

    def test_tracks_installs(self, geom):
        predictor = MruPredictor(geom)
        predictor.on_install(5, 1, 0, way=2)
        assert predictor.predict(5, 99, 0) == 2

    def test_misses_do_not_update(self, geom):
        predictor = MruPredictor(geom)
        predictor.on_install(5, 1, 0, way=2)
        predictor.on_access(5, 9, 0, way=None, hit=False)
        assert predictor.predict(5, 99, 0) == 2

    def test_per_set_isolation(self, geom):
        predictor = MruPredictor(geom)
        predictor.on_install(5, 1, 0, way=2)
        assert predictor.predict(6, 1, 0) == 0

    def test_storage_scales_with_sets(self, geom):
        # 4GB 2-way: 32M sets x 1 bit = 4MB (Table II).
        paper = MruPredictor(CacheGeometry(4 * 1024 * 1024 * 1024, 2))
        assert paper.storage_bits() == 32 * 1024 * 1024
        assert MruPredictor(geom).storage_bits() == geom.num_sets * 2


class TestPartialTag:
    def test_predicts_installed_way(self, geom):
        predictor = PartialTagPredictor(geom)
        predictor.on_install(3, 1234, 0, way=2)
        assert predictor.predict(3, 1234, 0) == 2

    def test_eviction_clears(self, geom):
        predictor = PartialTagPredictor(geom)
        predictor.on_install(3, 1234, 0, way=2)
        predictor.on_evict(3, 1234, 2)
        # Falls back to the preferred way after the entry is cleared.
        assert predictor.predict(3, 1234, 0) == preferred_way(1234, 4)

    def test_false_positive_possible(self, geom):
        predictor = PartialTagPredictor(geom, bits=1)
        # With 1-bit partial tags, collisions are frequent: find two tags
        # that collide and verify the earlier way wins the prediction.
        predictor.on_install(3, 0, 0, way=0)
        colliding = next(
            t for t in range(1, 100)
            if predictor._hash(t) == predictor._hash(0)
        )
        assert predictor.predict(3, colliding, 0) == 0

    def test_storage_paper_number(self):
        # 4GB cache, 4-bit partial tags: 64M lines x 4 bits = 32MB.
        paper = PartialTagPredictor(CacheGeometry(4 * 1024 * 1024 * 1024, 2))
        assert paper.storage_bits() == 256 * 1024 * 1024

    def test_rejects_bad_width(self, geom):
        with pytest.raises(ValueError):
            PartialTagPredictor(geom, bits=0)


class TestPerfect:
    def test_always_correct_on_hits(self, geom):
        store = TagStore(geom)
        predictor = PerfectPredictor(geom, store)
        store.install(7, 3, 55)  # tag 55 into way 3
        assert predictor.predict(7, 55, 0) == 3

    def test_falls_back_on_misses(self, geom):
        store = TagStore(geom)
        predictor = PerfectPredictor(geom, store)
        assert predictor.predict(7, 55, 0) == preferred_way(55, 4)
