"""Property-based tests on the interval timing model.

The model must be monotone in the physically meaningful directions for
*any* counter combination, not just the ones the experiments produce.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.params.system import scaled_system
from repro.sim.stats import CacheStats
from repro.sim.timing_model import IntervalTimingModel

_MODEL = IntervalTimingModel(scaled_system(ways=1))


def make_stats(reads, misses, transfers, hit_extras, writebacks):
    return CacheStats(
        demand_reads=reads,
        hits=reads - misses,
        misses=misses,
        first_probes=reads,
        hit_extra_probes=hit_extras,
        cache_read_transfers=transfers,
        cache_write_transfers=misses,
        nvm_reads=misses,
        nvm_writes=writebacks,
        installs=misses,
    )


_COUNTS = st.integers(min_value=1000, max_value=100_000)


@given(reads=_COUNTS, miss_frac=st.floats(0.0, 0.9),
       extra_frac=st.floats(0.0, 0.5))
@settings(max_examples=40, deadline=None)
def test_runtime_positive_and_converges(reads, miss_frac, extra_frac):
    misses = int(reads * miss_frac)
    stats = make_stats(reads, misses, reads, int(reads * extra_frac), 0)
    breakdown = _MODEL.evaluate(stats, instructions=reads * 40.0)
    assert breakdown.runtime_ns > 0
    assert breakdown.runtime_ns >= breakdown.base_ns


@given(reads=_COUNTS, miss_frac=st.floats(0.05, 0.8))
@settings(max_examples=25, deadline=None)
def test_more_misses_never_faster(reads, miss_frac):
    lo = int(reads * miss_frac * 0.5)
    hi = int(reads * miss_frac)
    if lo == hi:
        return
    fast = _MODEL.evaluate(make_stats(reads, lo, reads, 0, 0), reads * 40.0)
    slow = _MODEL.evaluate(make_stats(reads, hi, reads, 0, 0), reads * 40.0)
    assert slow.runtime_ns >= fast.runtime_ns


@given(reads=_COUNTS, extra=st.integers(min_value=0, max_value=50_000))
@settings(max_examples=25, deadline=None)
def test_hit_extras_never_faster(reads, extra):
    base = _MODEL.evaluate(make_stats(reads, reads // 4, reads, 0, 0),
                           reads * 40.0)
    probed = _MODEL.evaluate(make_stats(reads, reads // 4, reads, extra, 0),
                             reads * 40.0)
    assert probed.runtime_ns >= base.runtime_ns - 1e-6


@given(reads=_COUNTS,
       transfer_factor=st.floats(min_value=1.0, max_value=8.0))
@settings(max_examples=25, deadline=None)
def test_more_transfers_never_faster(reads, transfer_factor):
    lean = _MODEL.evaluate(make_stats(reads, reads // 4, reads, 0, 0),
                           reads * 40.0)
    fat = _MODEL.evaluate(
        make_stats(reads, reads // 4, int(reads * transfer_factor), 0, 0),
        reads * 40.0,
    )
    assert fat.runtime_ns >= lean.runtime_ns - 1e-6


@given(reads=_COUNTS, cores=st.integers(min_value=1, max_value=32))
@settings(max_examples=25, deadline=None)
def test_more_cores_never_faster(reads, cores):
    stats = make_stats(reads, reads // 3, reads * 2, 0, reads // 5)
    one = _MODEL.evaluate(stats, reads * 40.0, num_cores=1)
    many = _MODEL.evaluate(stats, reads * 40.0, num_cores=cores)
    assert many.runtime_ns >= one.runtime_ns - 1e-6
