"""Tests for phase-resolved metrics (repro.sim.phases) and their plumbing."""

import pytest

from repro.analysis.export import PHASE_CSV_COLUMNS, phases_to_csv, save_phases_csv
from repro.cache.events import LookupEvent, WritebackEvent
from repro.core.accord import AccordDesign
from repro.errors import ConfigError, SimulationError
from repro.exec.jobs import JobKey, execute_job
from repro.sim.phases import PhaseMetrics, PhaseSample, PhaseSeries
from repro.sim.runner import run_design
from repro.sim.system import RunResult


def lookup_event(hit=True, predicted=True, correct=True):
    return LookupEvent(
        addr=0, set_index=0, tag=0, hit=hit, way=0 if hit else None,
        serialized_accesses=1, transfers=1,
        predicted_way=0 if (hit and predicted) else None,
        prediction_correct=hit and predicted and correct,
    )


def writeback_event(absorbed=True):
    return WritebackEvent(
        addr=0, set_index=0, tag=0, absorbed=absorbed,
        way=0 if absorbed else None, probes=0,
        dcp_hit=absorbed, bypassed_by_dcp=not absorbed,
    )


class TestPhaseMetrics:
    def test_rejects_nonpositive_epoch(self):
        with pytest.raises(ConfigError):
            PhaseMetrics(0)

    def test_epoch_windowing(self):
        metrics = PhaseMetrics(epoch=10)
        for i in range(25):
            metrics.on_lookup(lookup_event(hit=(i % 2 == 0)))
        series = metrics.result()
        assert [s.accesses for s in series] == [10, 10, 5]
        assert [s.start_access for s in series] == [0, 10, 20]
        assert [s.index for s in series] == [0, 1, 2]
        assert sum(s.hits for s in series) == 13

    def test_exact_multiple_leaves_no_partial_epoch(self):
        metrics = PhaseMetrics(epoch=5)
        for _ in range(10):
            metrics.on_lookup(lookup_event())
        assert [s.accesses for s in metrics.result()] == [5, 5]

    def test_events_between_reads_stay_in_open_window(self):
        # The boundary check runs at the *start* of a read, so the
        # writeback following the epoch's last read still belongs to it.
        metrics = PhaseMetrics(epoch=2)
        metrics.on_lookup(lookup_event())
        metrics.on_lookup(lookup_event())
        metrics.on_writeback(writeback_event(absorbed=False))
        metrics.on_lookup(lookup_event())
        series = metrics.result()
        assert [s.accesses for s in series] == [2, 1]
        assert [s.writebacks for s in series] == [1, 0]
        assert [s.nvm_writes for s in series] == [1, 0]

    def test_finalize_is_idempotent(self):
        metrics = PhaseMetrics(epoch=4)
        metrics.on_lookup(lookup_event())
        metrics.finalize()
        metrics.finalize()
        assert len(metrics.result()) == 1

    def test_empty_run_yields_empty_series(self):
        assert len(PhaseMetrics(epoch=4).result()) == 0

    def test_sink_streams_each_epoch_incrementally(self):
        # The sink (the sweep service's live phase stream) must see each
        # sample the moment its epoch closes, not at finalize.
        seen = []
        metrics = PhaseMetrics(epoch=10, sink=seen.append)
        for _ in range(15):
            metrics.on_lookup(lookup_event())
        assert [s.index for s in seen] == [0]  # first epoch already out
        for _ in range(10):
            metrics.on_lookup(lookup_event())
        metrics.finalize()
        assert [s.index for s in seen] == [0, 1, 2]  # trailing partial too
        assert list(metrics.result()) == seen  # identical objects/order

    def test_sink_sees_nothing_on_empty_run(self):
        seen = []
        metrics = PhaseMetrics(epoch=4, sink=seen.append)
        metrics.finalize()
        assert seen == []

    def test_prediction_counters(self):
        metrics = PhaseMetrics(epoch=10)
        metrics.on_lookup(lookup_event(hit=True, predicted=True, correct=True))
        metrics.on_lookup(lookup_event(hit=True, predicted=True, correct=False))
        metrics.on_lookup(lookup_event(hit=True, predicted=False))
        metrics.on_lookup(lookup_event(hit=False))
        (sample,) = metrics.result()
        assert sample.hits == 3
        assert sample.predicted_hits == 2
        assert sample.correct_predictions == 1
        assert sample.prediction_accuracy == 0.5
        assert sample.hit_rate == 0.75


class TestPhaseSeries:
    def sample(self, **overrides):
        base = dict(
            index=0, start_access=0, accesses=10, hits=7, predicted_hits=6,
            correct_predictions=5, nvm_reads=3, nvm_writes=2, writebacks=4,
        )
        base.update(overrides)
        return PhaseSample(**base)

    def test_derived_properties(self):
        sample = self.sample()
        assert sample.misses == 3
        assert sample.nvm_traffic == 5

    def test_series_extraction(self):
        series = PhaseSeries(epoch=10, samples=(
            self.sample(), self.sample(index=1, start_access=10, hits=5),
        ))
        assert series.series("hits") == [7, 5]
        assert series.series("hit_rate") == [0.7, 0.5]

    def test_series_rejects_unknown_metric(self):
        series = PhaseSeries(epoch=10, samples=(self.sample(),))
        with pytest.raises(SimulationError):
            series.series("latency")

    def test_round_trip(self):
        series = PhaseSeries(epoch=10, samples=(
            self.sample(), self.sample(index=1, start_access=10),
        ))
        assert PhaseSeries.from_dict(series.to_dict()) == series

    def test_from_dict_rejects_unknown_fields(self):
        record = PhaseSeries(epoch=10, samples=(self.sample(),)).to_dict()
        record["samples"][0]["bogus"] = 1
        with pytest.raises(SimulationError):
            PhaseSeries.from_dict(record)

    def test_from_dict_rejects_missing_keys(self):
        with pytest.raises(SimulationError):
            PhaseSeries.from_dict({"epoch": 10})


@pytest.fixture(scope="module")
def phased_result():
    return run_design(
        AccordDesign("accord", ways=2), "soplex",
        num_accesses=4000, seed=9, epoch=500,
    )


class TestSimulatorIntegration:
    def test_phases_cover_the_measurement_window(self, phased_result):
        phases = phased_result.phases
        stats = phased_result.stats
        assert phases is not None and len(phases) > 1
        assert phases.epoch == 500
        assert sum(s.accesses for s in phases) == stats.demand_reads
        assert sum(s.hits for s in phases) == stats.hits
        assert sum(s.nvm_reads for s in phases) == stats.nvm_reads
        assert sum(s.nvm_writes for s in phases) == stats.nvm_writes
        assert sum(s.writebacks for s in phases) == stats.writebacks_in
        # Every epoch but the trailing partial one is full-length.
        assert all(s.accesses == 500 for s in list(phases)[:-1])

    def test_epoch_observer_detaches_after_run(self, phased_result):
        # phased_result is produced by a Simulator internally; a second
        # run through run_design without epoch must be observer-free.
        result = run_design(
            AccordDesign("accord", ways=2), "soplex",
            num_accesses=3000, seed=9,
        )
        assert result.phases is None

    def test_phases_do_not_change_counters(self):
        kwargs = dict(num_accesses=3000, seed=9)
        design = AccordDesign("accord", ways=2)
        plain = run_design(design, "soplex", **kwargs)
        phased = run_design(design, "soplex", epoch=500, **kwargs)
        assert plain.stats.to_dict() == phased.stats.to_dict()

    def test_ca_cache_ignores_epoch(self):
        result = run_design(
            AccordDesign("ca", ways=1), "soplex",
            num_accesses=2000, seed=9, epoch=500,
        )
        assert result.phases is None

    def test_run_result_round_trip(self, phased_result):
        rebuilt = RunResult.from_dict(phased_result.to_dict())
        assert rebuilt.phases == phased_result.phases
        assert rebuilt.stats.to_dict() == phased_result.stats.to_dict()

    def test_round_trip_without_phases(self):
        result = run_design(
            AccordDesign("direct", ways=1), "soplex",
            num_accesses=2000, seed=9,
        )
        assert RunResult.from_dict(result.to_dict()).phases is None


class TestJobKeyEpoch:
    def key(self, epoch=None):
        return JobKey(
            design=AccordDesign("accord", ways=2), workload="soplex",
            num_accesses=3000, epoch=epoch,
        )

    def test_epoch_in_canonical_form(self):
        assert self.key(epoch=500).canonical()["epoch"] == 500
        assert self.key().canonical()["epoch"] is None

    def test_epoch_changes_the_digest(self):
        assert self.key().digest() != self.key(epoch=500).digest()
        assert self.key(epoch=500).digest() == self.key(epoch=500).digest()

    def test_rejects_nonpositive_epoch(self):
        with pytest.raises(ConfigError):
            self.key(epoch=0)

    def test_execute_job_records_phases(self):
        result = execute_job(self.key(epoch=1000))
        assert result.phases is not None
        assert result.phases.epoch == 1000


class TestPhaseCsv:
    def test_export_shape(self, phased_result):
        text = phases_to_csv({"accord": {"soplex": phased_result}})
        lines = text.splitlines()
        assert lines[0] == ",".join(PHASE_CSV_COLUMNS)
        assert len(lines) == 1 + len(phased_result.phases)
        assert lines[1].startswith("accord,soplex,0,0,500,")

    def test_skips_phaseless_results_but_keeps_rows(self, phased_result):
        plain = run_design(
            AccordDesign("direct", ways=1), "soplex",
            num_accesses=2000, seed=9,
        )
        text = phases_to_csv({
            "accord": {"soplex": phased_result},
            "direct": {"soplex": plain},
        })
        assert "direct" not in text

    def test_all_phaseless_is_an_error(self):
        plain = run_design(
            AccordDesign("direct", ways=1), "soplex",
            num_accesses=2000, seed=9,
        )
        with pytest.raises(SimulationError):
            phases_to_csv({"direct": {"soplex": plain}})

    def test_failed_save_does_not_truncate(self, tmp_path):
        target = tmp_path / "phases.csv"
        target.write_text("precious\n")
        with pytest.raises(SimulationError):
            save_phases_csv({}, str(target))
        assert target.read_text() == "precious\n"
