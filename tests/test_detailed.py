"""Tests for the cycle-level detailed engine, including cross-validation
against the interval model's latency components."""

import pytest

from repro.core.accord import AccordDesign, make_design
from repro.cache.geometry import CacheGeometry
from repro.params.system import scaled_system
from repro.sim.detailed import DetailedEngine
from repro.sim.trace import trace_from_arrays
from repro.errors import SimulationError


def small_config():
    return scaled_system(ways=1, scale=1.0 / 1024.0)  # 4MB cache


def make_engine(kind="direct", ways=1, window=8):
    config = scaled_system(ways=ways, scale=1.0 / 1024.0)
    geometry = CacheGeometry(config.dram_cache.capacity_bytes, ways)
    cache = make_design(AccordDesign(kind=kind, ways=ways), geometry, seed=5)
    return DetailedEngine(config, cache, window=window), cache


class TestReplay:
    def test_replay_advances_time(self):
        engine, cache = make_engine()
        trace = trace_from_arrays("t", [i * 64 for i in range(200)], [0] * 200, 40.0)
        result = engine.replay(trace)
        assert result.total_ns > 0
        assert result.demand_reads == 200
        assert result.nvm_reads == cache.stats.nvm_reads

    def test_hits_faster_than_misses(self):
        engine, cache = make_engine()
        addrs = [i * 64 for i in range(100)]
        # A slow issue rate isolates per-request latency from queueing;
        # the warm pass uses a fresh engine (device clocks restart) but
        # the now-filled cache.
        cold = trace_from_arrays("cold", addrs, [0] * 100, 40.0)
        cold_result = engine.replay(cold, issue_interval_ns=1000.0)
        warm_engine = DetailedEngine(engine.config, cache)
        warm = trace_from_arrays("warm", addrs, [0] * 100, 40.0)
        warm_result = warm_engine.replay(warm, issue_interval_ns=1000.0)
        assert warm_result.avg_read_latency_ns < cold_result.avg_read_latency_ns

    def test_writebacks_handled(self):
        engine, cache = make_engine()
        addrs = [0, 0, 64]
        writes = [0, 1, 1]  # read 0, write back 0 (resident), write 64 (absent)
        trace = trace_from_arrays("wb", addrs, writes, 40.0)
        engine.replay(trace)
        assert cache.stats.writeback_direct == 1
        assert cache.stats.writeback_bypass == 1

    def test_row_hit_rate_reported(self):
        engine, _ = make_engine()
        # Repeated access to one set's row drives the row hit rate up.
        trace = trace_from_arrays("rh", [0] * 50, [0] * 50, 40.0)
        result = engine.replay(trace)
        assert result.dram_row_hit_rate > 0.8

    def test_window_validation(self):
        with pytest.raises(SimulationError):
            make_engine(window=0)

    def test_window_limits_overlap(self):
        engine1, _ = make_engine(window=1)
        engine8, _ = make_engine(window=8)
        addrs = [i * 64 * 33 for i in range(300)]  # scattered (bank parallel)
        t1 = engine1.replay(trace_from_arrays("w1", addrs, [0] * 300, 40.0))
        t8 = engine8.replay(trace_from_arrays("w8", addrs, [0] * 300, 40.0))
        assert t8.total_ns <= t1.total_ns


class TestCrossValidation:
    def test_interval_model_brackets_detailed_hit_latency(self):
        """For an all-hits workload the detailed average read latency
        should be in the same regime as the interval model's hit path
        (first probe + transfer, without queueing)."""
        from repro.sim.timing_model import IntervalTimingModel

        engine, cache = make_engine()
        addrs = [i * 64 for i in range(256)]
        engine.replay(trace_from_arrays("fill", addrs, [0] * 256, 40.0))
        measure_engine = DetailedEngine(engine.config, cache)
        result = measure_engine.replay(
            trace_from_arrays("measure", addrs, [0] * 256, 40.0),
            issue_interval_ns=1000.0,
        )

        model = IntervalTimingModel(small_config())
        floor = model.extra_probe_ns  # best case: open row CAS
        ceiling = 4 * (model.first_probe_ns + model.dram_service_ns)
        assert floor <= result.avg_read_latency_ns <= ceiling

    def test_miss_latency_dominated_by_nvm(self):
        engine, _ = make_engine()
        addrs = [i * 64 for i in range(256)]  # all cold misses
        result = engine.replay(
            trace_from_arrays("cold", addrs, [0] * 256, 40.0),
            issue_interval_ns=1000.0,
        )
        config = small_config()
        assert result.avg_read_latency_ns >= config.nvm_timing.read_ns


class TestRefresh:
    def test_refresh_controller_blocks_banks(self):
        from repro.mem.bank import Bank, RefreshController
        from repro.params.timing import DramTiming

        controller = RefreshController(t_refi_ns=100.0, t_rfc_ns=20.0)
        banks = [Bank(DramTiming()) for _ in range(2)]
        banks[0].access(5, 0.0)
        # Before tREFI nothing happens.
        assert controller.apply(banks, 50.0) == 50.0
        assert controller.refreshes == 0
        # After tREFI the banks are blocked for tRFC and rows closed.
        blocked_until = controller.apply(banks, 120.0)
        assert blocked_until == pytest.approx(140.0)
        assert controller.refreshes == 1
        assert banks[0].open_row == -1
        assert all(b.busy_until_ns >= 140.0 for b in banks)

    def test_refresh_validation(self):
        from repro.mem.bank import RefreshController

        with pytest.raises(ValueError):
            RefreshController(t_refi_ns=0)
        with pytest.raises(ValueError):
            RefreshController(t_refi_ns=10, t_rfc_ns=20)

    def test_engine_with_refresh_slower(self):
        from repro.mem.bank import RefreshController

        engine_plain, _ = make_engine()
        addrs = [i * 64 for i in range(400)]
        plain = engine_plain.replay(
            trace_from_arrays("p", addrs, [0] * 400, 40.0),
            issue_interval_ns=50.0,
        )
        config = scaled_system(ways=1, scale=1.0 / 1024.0)
        from repro.cache.geometry import CacheGeometry
        from repro.core.accord import AccordDesign, make_design

        geometry = CacheGeometry(config.dram_cache.capacity_bytes, 1)
        cache = make_design(AccordDesign(kind="direct", ways=1), geometry, seed=5)
        engine_refresh = DetailedEngine(
            config, cache, refresh=RefreshController(t_refi_ns=500.0, t_rfc_ns=100.0)
        )
        refreshed = engine_refresh.replay(
            trace_from_arrays("r", addrs, [0] * 400, 40.0),
            issue_interval_ns=50.0,
        )
        assert refreshed.total_ns >= plain.total_ns
