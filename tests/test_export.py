"""Tests for CSV export/import of experiment series."""

import pytest

from repro.analysis.export import (
    load_series_csv,
    runs_to_csv,
    save_series_csv,
    series_to_csv,
)
from repro.errors import SimulationError


SERIES = {
    "ACCORD": {"soplex": 1.078, "milc": 0.968},
    "Perfect": {"soplex": 1.078, "milc": 0.976},
}


class TestSeriesCsv:
    def test_tidy_layout(self):
        text = series_to_csv(SERIES, value_name="speedup")
        lines = text.strip().splitlines()
        assert lines[0] == "workload,series,speedup"
        # milc precedes soplex (paper figure order).
        assert lines[1].startswith("milc,ACCORD")
        assert any(line.startswith("soplex,Perfect") for line in lines)

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "series.csv")
        save_series_csv(SERIES, path)
        loaded = load_series_csv(path)
        assert loaded == SERIES

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope,nope\n")
        with pytest.raises(SimulationError):
            load_series_csv(str(path))

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            series_to_csv({})


class TestRunsCsv:
    def test_export_run_results(self):
        from repro.core.accord import AccordDesign
        from repro.params.system import scaled_system
        from repro.sim.runner import run_suite

        config = scaled_system(ways=2, scale=1.0 / 1024.0)
        results = run_suite(
            AccordDesign(kind="accord", ways=2), ["sphinx"],
            config=config, num_accesses=10_000,
        )
        text = runs_to_csv(results)
        lines = text.strip().splitlines()
        assert lines[0].startswith("workload,hit_rate")
        assert lines[1].startswith("sphinx,")
        # Values parse back as floats.
        fields = lines[1].split(",")
        assert 0.0 <= float(fields[1]) <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            runs_to_csv({})
