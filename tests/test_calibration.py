"""Calibration regression tests.

Locks the workload-catalog tuning: each rate-mode workload's
direct-mapped hit-rate and its qualitative associativity sensitivity
must stay inside bands. If a generator or spec change shifts behaviour,
these fail before the experiment outputs silently drift.

Marked slow: run the full 17-workload sweep only when needed.
"""

import pytest

from repro.core.accord import AccordDesign
from repro.params.system import scaled_system
from repro.sim.runner import TraceFactory, run_design
from repro.workloads.spec import rate_mode_specs

ACCESSES = 100_000
SEED = 7

# Direct-mapped hit-rate bands at 100k accesses (wider than the
# calibration targets: shorter traces are colder).
DM_BANDS = {
    "soplex": (0.35, 0.60),
    "leslie": (0.45, 0.70),
    "libq": (0.55, 0.85),
    "gcc": (0.55, 0.80),
    "zeusmp": (0.60, 0.85),
    "wrf": (0.60, 0.85),
    "omnet": (0.55, 0.80),
    "xalanc": (0.65, 0.88),
    "mcf": (0.40, 0.65),
    "sphinx": (0.90, 1.00),
    "milc": (0.48, 0.72),
    "pr_twi": (0.42, 0.68),
    "cc_twi": (0.42, 0.68),
    "bc_twi": (0.42, 0.68),
    "pr_web": (0.50, 0.75),
    "cc_web": (0.50, 0.76),
    "nekbone": (0.82, 1.00),
}

# Workloads whose idealized 8-way hit-rate must visibly exceed DM.
SENSITIVE = ["soplex", "leslie", "libq", "gcc"]
INSENSITIVE = ["sphinx", "milc", "nekbone"]


@pytest.fixture(scope="module")
def dm_results():
    config = scaled_system(ways=1)
    traces = TraceFactory(config, ACCESSES, seed=SEED)
    return {
        spec.name: run_design(
            AccordDesign(kind="direct", ways=1), spec.name,
            config=config, traces=traces, num_accesses=ACCESSES,
        )
        for spec in rate_mode_specs()
    }


@pytest.mark.slow
class TestCalibration:
    def test_dm_hit_rates_in_band(self, dm_results):
        failures = []
        for name, (lo, hi) in DM_BANDS.items():
            hit = dm_results[name].hit_rate
            if not lo <= hit <= hi:
                failures.append(f"{name}: {hit:.3f} not in [{lo}, {hi}]")
        assert not failures, "; ".join(failures)

    def test_sensitive_workloads_gain_from_associativity(self, dm_results):
        config = scaled_system(ways=8)
        traces = TraceFactory(scaled_system(ways=1), ACCESSES, seed=SEED)
        for name in SENSITIVE:
            ideal = run_design(
                AccordDesign(kind="ideal", ways=8), name,
                config=config, traces=traces, num_accesses=ACCESSES,
            )
            gain = ideal.hit_rate - dm_results[name].hit_rate
            assert gain > 0.04, f"{name}: gain {gain:.3f} too small"

    def test_insensitive_workloads_flat(self, dm_results):
        config = scaled_system(ways=8)
        traces = TraceFactory(scaled_system(ways=1), ACCESSES, seed=SEED)
        for name in INSENSITIVE:
            ideal = run_design(
                AccordDesign(kind="ideal", ways=8), name,
                config=config, traces=traces, num_accesses=ACCESSES,
            )
            gain = ideal.hit_rate - dm_results[name].hit_rate
            assert gain < 0.03, f"{name}: gain {gain:.3f} too large"

    def test_potential_ordering_tracks_paper(self, dm_results):
        """soplex must be the most sensitive workload, as in Table IV."""
        config = scaled_system(ways=8)
        traces = TraceFactory(scaled_system(ways=1), ACCESSES, seed=SEED)
        gains = {}
        for name in ("soplex", "xalanc", "sphinx"):
            ideal = run_design(
                AccordDesign(kind="ideal", ways=8), name,
                config=config, traces=traces, num_accesses=ACCESSES,
            )
            gains[name] = ideal.hit_rate - dm_results[name].hit_rate
        assert gains["soplex"] > gains["xalanc"] > gains["sphinx"] - 0.005
