"""Tests for the analysis package: analytic models, storage, energy,
report formatting."""

import pytest

from repro.analysis.analytic import (
    cyclic_direct_mapped_hit_rate,
    cyclic_pws_hit_rate,
    lookup_cost_table,
)
from repro.analysis.energy import EnergyModel, EnergyParams
from repro.analysis.report import FIGURE_WORKLOAD_ORDER, per_workload_table
from repro.analysis.storage import (
    accord_storage_bytes,
    predictor_storage_bytes,
    storage_table,
)
from repro.cache.geometry import CacheGeometry
from repro.errors import PolicyError, SimulationError
from repro.sim.stats import CacheStats

PAPER_GEOMETRY = CacheGeometry(4 * 1024 * 1024 * 1024, 2)


class TestLookupCostTable:
    def test_table_i_values_4way(self):
        costs = {c.organization: c for c in lookup_cost_table(4)}
        dm = costs["Direct-mapped"]
        assert (dm.hit_accesses, dm.hit_transfers) == (1, 1)
        par = costs["Parallel Lookup (4-way)"]
        assert par.hit_transfers == 4 and par.miss_transfers == 4
        ser = costs["Serial Lookup (4-way)"]
        assert ser.hit_accesses == 2.5 and ser.miss_accesses == 4
        wp = costs["Way Predicted (4-way)"]
        assert wp.hit_accesses == 1 and wp.miss_accesses == 4
        sws = costs["Way Predicted SWS(4,2)"]
        assert sws.miss_accesses == 2

    def test_rejects_bad_ways(self):
        with pytest.raises(PolicyError):
            lookup_cost_table(0)


class TestCyclicModel:
    def test_direct_mapped_is_zero(self):
        assert cyclic_direct_mapped_hit_rate(100) == 0.0

    def test_pip_one_is_direct_mapped(self):
        assert cyclic_pws_hit_rate(1.0, 64) == 0.0

    def test_unbiased_learns_fastest(self):
        for n in (4, 16, 64):
            assert (
                cyclic_pws_hit_rate(0.5, n)
                > cyclic_pws_hit_rate(0.8, n)
                > cyclic_pws_hit_rate(0.95, n)
            )

    def test_converges_with_reuse(self):
        # Figure 6: even PIP=90% eventually learns to use both ways.
        assert cyclic_pws_hit_rate(0.9, 128) > 0.9
        assert cyclic_pws_hit_rate(0.9, 2) < 0.3

    def test_monotone_in_iterations(self):
        rates = [cyclic_pws_hit_rate(0.85, n) for n in (2, 8, 32, 128)]
        assert rates == sorted(rates)

    def test_upper_bound(self):
        # 2 compulsory misses in 2N accesses bound the hit-rate.
        for n in (2, 8, 32):
            assert cyclic_pws_hit_rate(0.5, n) <= 1.0 - 1.0 / (2 * n) + 1e-9

    def test_matches_simulation(self):
        """The DP must agree with the real PWS cache on the kernel."""
        from repro.experiments.fig6_cyclic import simulated_hit_rate

        for pip in (0.5, 0.8):
            analytic = cyclic_pws_hit_rate(pip, 16)
            simulated = simulated_hit_rate(pip, 16, trials=64)
            assert abs(analytic - simulated) < 0.08

    def test_validation(self):
        with pytest.raises(PolicyError):
            cyclic_pws_hit_rate(1.5, 10)
        with pytest.raises(PolicyError):
            cyclic_pws_hit_rate(0.5, 0)


class TestStorage:
    def test_paper_numbers(self):
        # Table II / Table X storage at 4GB.
        assert predictor_storage_bytes("mru", PAPER_GEOMETRY) == 4 * 1024 * 1024
        assert predictor_storage_bytes("partial_tag", PAPER_GEOMETRY) == 32 * 1024 * 1024
        assert predictor_storage_bytes("rand", PAPER_GEOMETRY) == 0
        assert predictor_storage_bytes("accord", PAPER_GEOMETRY) == 320

    def test_accord_total(self):
        assert accord_storage_bytes(ways=2) == 320

    def test_storage_table_rows(self):
        rows = dict(storage_table(PAPER_GEOMETRY))
        assert rows["Probabilistic Way-Steering"] == 0
        assert rows["Skewed Way-Steering"] == 0
        assert rows["ACCORD"] == 320

    def test_unknown_predictor(self):
        with pytest.raises(PolicyError):
            predictor_storage_bytes("oracle", PAPER_GEOMETRY)


class TestEnergy:
    def _stats(self):
        return CacheStats(
            demand_reads=1000, hits=750, misses=250, first_probes=1000,
            cache_read_transfers=1200, cache_write_transfers=300,
            nvm_reads=250, nvm_writes=100,
        )

    def test_report_components(self):
        model = EnergyModel(num_cores=16)
        report = model.evaluate(self._stats(), runtime_ns=100_000.0)
        assert report.dynamic_dram_nj > 0
        assert report.dynamic_nvm_nj > 0
        assert report.static_nj > 0
        assert report.total_nj == pytest.approx(
            report.dynamic_dram_nj + report.dynamic_nvm_nj + report.static_nj
        )

    def test_power_and_edp(self):
        model = EnergyModel()
        report = model.evaluate(self._stats(), runtime_ns=100_000.0)
        assert report.power_w == pytest.approx(report.total_nj / 100_000.0)
        assert report.edp == pytest.approx(report.total_nj * 100_000.0)

    def test_relative(self):
        model = EnergyModel()
        base = model.evaluate(self._stats(), runtime_ns=100_000.0)
        stats = self._stats()
        stats.nvm_reads = 100  # fewer misses -> less NVM energy
        better = model.evaluate(stats, runtime_ns=90_000.0)
        relative = better.relative_to(base)
        assert relative["energy"] < 1.0
        assert relative["edp"] < 1.0
        assert relative["speedup"] > 1.0

    def test_nvm_writes_expensive(self):
        params = EnergyParams()
        assert params.nvm_write_nj > params.nvm_read_nj > params.dram_transfer_nj

    def test_validation(self):
        with pytest.raises(SimulationError):
            EnergyModel(num_cores=0)
        with pytest.raises(SimulationError):
            EnergyModel().evaluate(CacheStats(), runtime_ns=0.0)


class TestReport:
    def test_paper_order_respected(self):
        columns = {"A": {"soplex": 1.1, "milc": 0.99, "libq": 1.2}}
        table = per_workload_table(columns, title="t")
        lines = table.splitlines()
        milc_line = next(i for i, l in enumerate(lines) if l.startswith("milc"))
        libq_line = next(i for i, l in enumerate(lines) if l.startswith("libq"))
        soplex_line = next(i for i, l in enumerate(lines) if l.startswith("soplex"))
        assert milc_line < libq_line < soplex_line

    def test_gmean_row(self):
        columns = {"A": {"x": 2.0, "y": 0.5}}
        table = per_workload_table(columns, title="t")
        assert "Gmean" in table
        assert "1.000" in table.splitlines()[-1]

    def test_unknown_workloads_appended(self):
        columns = {"A": {"zzz": 1.0, "milc": 1.0}}
        table = per_workload_table(columns, title="t", gmean_row=False)
        lines = table.splitlines()
        assert lines[-1].startswith("zzz")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            per_workload_table({}, title="t")

    def test_order_constant_sane(self):
        assert len(FIGURE_WORKLOAD_ORDER) == 21
        assert FIGURE_WORKLOAD_ORDER[0] == "milc"
        assert FIGURE_WORKLOAD_ORDER[-1] == "mix4"
