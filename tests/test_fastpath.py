"""Fast-path equivalence: the batched hot loop is bit-identical.

The simulator has three ways to drive a trace through a cache:

1. the legacy per-address loop (``fast_path=False``: ``geometry.split``
   per access, ``cache.read``/``cache.writeback``);
2. the batched :meth:`AccessPath.run_stream` over precomputed split
   columns (``fast_path=True``, no observers) — the measured fast path
   with hoisted invariants and local counter accumulation;
3. the observer fallback inside ``run_stream`` (``fast_path=True`` with
   an observer attached): per-access split entry points emitting the
   typed event stream.

These are three implementations of one specification. The sweep below
pins all of them bit-identical — ``CacheStats`` and the whole
``RunResult`` — for every benchmark design variant on randomized
traces, which is what licenses the fast path's specializations
(static candidates, skipped no-op calls, deferred stats flush).
"""

import pytest

from repro.cache.events import StatsObserver
from repro.core.accord import AccordDesign
from repro.core.protocols import ensure_policy_conformance
from repro.core.steering import InstallSteering, UnbiasedSteering
from repro.errors import PolicyError
from repro.params.system import scaled_system
from repro.sim.bench import BENCH_DESIGNS
from repro.sim.system import Simulator, build_dram_cache
from repro.sim.trace import Trace
from repro.utils.rng import XorShift64


def random_trace(seed: int, n: int = 3000, footprint_lines: int = 700) -> Trace:
    """A randomized mixed read/write trace over a small footprint.

    The footprint is a few times the test cache capacity so hits,
    misses, evictions and writeback bypasses all occur.
    """
    rng = XorShift64(seed)
    addrs = []
    writes = bytearray()
    for _ in range(n):
        addrs.append(rng.next_below(footprint_lines) * 64)
        writes.append(1 if rng.next_below(4) == 0 else 0)
    return Trace(f"random-{seed}", addrs, writes, instructions_per_access=40.0)


def _design_id(design):
    return design.display_name.replace(" ", "_")


@pytest.fixture(scope="module", params=[101, 202])
def trace(request):
    t = random_trace(request.param)
    assert any(t.writes) and not all(t.writes)
    return t


class TestFastPathEquivalence:
    """All 16 benchmark design variants, three drive modes, one result."""

    @pytest.mark.parametrize("design", BENCH_DESIGNS, ids=_design_id)
    def test_fast_path_matches_per_address_loop(self, design, trace):
        config = scaled_system(ways=design.ways, scale=1.0 / 2048.0)
        fast = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, fast_path=True
        )
        slow = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, fast_path=False
        )
        assert fast.to_dict() == slow.to_dict()

    @pytest.mark.parametrize(
        "design",
        [d for d in BENCH_DESIGNS if d.kind != "ca"],
        ids=_design_id,
    )
    def test_fast_path_matches_event_observed_path(self, design, trace):
        """run_stream's batch loop == its per-access observer fallback.

        The observer both forces the fallback and independently rebuilds
        the counters from the event stream, so one run checks the
        fallback against the events and the comparison checks the batch
        loop against the fallback. Zero warmup: the shadow observer sees
        the whole trace, while the cache's counters reset at the warm
        boundary, so the streams only align over a full-trace window.
        """
        config = scaled_system(ways=design.ways, scale=1.0 / 2048.0)
        fast = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.0, fast_path=True
        )
        observed_sim = Simulator(config, design, seed=5)
        shadow = StatsObserver()
        observed_sim.cache.add_observer(shadow)
        observed = observed_sim.run(trace, warmup_fraction=0.0, fast_path=True)
        assert fast.to_dict() == observed.to_dict()
        assert shadow.stats.to_dict() == observed.stats.to_dict()

    @pytest.mark.parametrize(
        "design",
        [d for d in BENCH_DESIGNS if d.kind != "ca"],
        ids=_design_id,
    )
    def test_observed_fallback_matches_fast_path_with_warmup(self, design, trace):
        """Observer-forced fallback and batch loop agree across the
        warmup counter reset too (shadow totals aside)."""
        config = scaled_system(ways=design.ways, scale=1.0 / 2048.0)
        fast = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, fast_path=True
        )
        observed_sim = Simulator(config, design, seed=5)
        observed_sim.cache.add_observer(StatsObserver())
        observed = observed_sim.run(trace, warmup_fraction=0.3, fast_path=True)
        assert fast.to_dict() == observed.to_dict()

    def test_zero_warmup_and_full_trace_windows_agree(self, trace):
        design = AccordDesign("accord", ways=2)
        config = scaled_system(ways=2, scale=1.0 / 2048.0)
        for warmup in (0.0, 0.5, 0.9):
            fast = Simulator(config, design, seed=5).run(
                trace, warmup_fraction=warmup, fast_path=True
            )
            slow = Simulator(config, design, seed=5).run(
                trace, warmup_fraction=warmup, fast_path=False
            )
            assert fast.to_dict() == slow.to_dict()


class TestRunStream:
    def test_run_stream_slices_compose(self, trace):
        """Driving [0, k) then [k, n) equals one [0, n) sweep."""
        design = AccordDesign("accord", ways=2)
        config = scaled_system(ways=2, scale=1.0 / 2048.0)
        whole = build_dram_cache(design, config, seed=3)
        split = build_dram_cache(design, config, seed=3)
        cols = trace.split_columns(whole.geometry)
        n = len(trace)
        whole.path.run_stream(
            trace.writes, cols.set_indices, cols.tags, trace.addrs, 0, n
        )
        k = n // 3
        split.path.run_stream(
            trace.writes, cols.set_indices, cols.tags, trace.addrs, 0, k
        )
        split.path.run_stream(
            trace.writes, cols.set_indices, cols.tags, trace.addrs, k, n
        )
        assert whole.stats.to_dict() == split.stats.to_dict()

    def test_generator_candidates_still_work(self, trace):
        """A steering policy may return one-shot iterables (no static
        contract); the stream driver must materialize them once."""

        class GeneratorSteering(UnbiasedSteering):
            def candidate_ways(self, set_index, tag):
                return (way for way in range(self.ways))

            def choose_install_way(self, set_index, tag, addr, store, replacement):
                # The install path (like the reference UnbiasedSteering)
                # needs an indexable sequence; the one-shot contract the
                # access path must honor is on the lookup/probe side.
                candidates = tuple(self.candidate_ways(set_index, tag))
                return replacement.victim(set_index, candidates, store)

        design = AccordDesign("unbiased", ways=2)
        config = scaled_system(ways=2, scale=1.0 / 2048.0)
        reference = build_dram_cache(design, config, seed=3)
        patched = build_dram_cache(design, config, seed=3)
        patched.steering = GeneratorSteering(patched.geometry)
        assert patched.steering.static_candidates is None
        cols = trace.split_columns(reference.geometry)
        for cache in (reference, patched):
            cache.path.run_stream(
                trace.writes, cols.set_indices, cols.tags, trace.addrs,
                0, len(trace),
            )
        assert reference.stats.to_dict() == patched.stats.to_dict()


class TestStaticCandidatesContract:
    def test_base_subclass_inherits_static_candidates(self, geom_2way):
        assert UnbiasedSteering(geom_2way).static_candidates == (0, 1)

    def test_overriding_subclass_defaults_to_none(self, geom_2way):
        class PerTag(InstallSteering):
            def candidate_ways(self, set_index, tag):
                return (tag % self.ways,)

        assert PerTag(geom_2way).static_candidates is None

    def test_lying_declaration_fails_at_build_time(self, geom_2way):
        """The validated-once check: a policy whose static_candidates
        disagrees with candidate_ways is rejected before any access."""

        class Liar(UnbiasedSteering):
            def __init__(self, geometry):
                super().__init__(geometry)
                self.static_candidates = (0,)  # but candidate_ways says (0, 1)

            def candidate_ways(self, set_index, tag):
                return self._all_ways

        design = AccordDesign("unbiased", ways=2)
        config = scaled_system(ways=2, scale=1.0 / 2048.0)
        cache = build_dram_cache(design, config, seed=3)
        cache.steering = Liar(cache.geometry)
        with pytest.raises(PolicyError, match="static_candidates"):
            ensure_policy_conformance(cache)
