"""Unit tests for table rendering and the fixed-point solver."""

import pytest

from repro.errors import SimulationError
from repro.utils.fixedpoint import solve_fixed_point
from repro.utils.tables import format_percent, format_speedup, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2  # header/sep/rows align

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456]])
        assert "1.235" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestFormatHelpers:
    def test_percent(self):
        assert format_percent(0.742) == "74.2%"
        assert format_percent(1.0, digits=0) == "100%"

    def test_speedup(self):
        assert format_speedup(1.0734) == "1.073"


class TestFixedPoint:
    def test_constant_function(self):
        assert solve_fixed_point(lambda x: 5.0, initial=1.0) == pytest.approx(5.0, rel=1e-6)

    def test_decreasing_function(self):
        # x = 10/x -> x = sqrt(10); monotone decreasing in x.
        root = solve_fixed_point(lambda x: 10.0 / x, initial=1.0)
        assert root == pytest.approx(10.0 ** 0.5, rel=1e-5)

    def test_affine_decreasing(self):
        # x = 100 - 0.5x -> x = 200/3
        root = solve_fixed_point(lambda x: 100.0 - 0.5 * x, initial=1.0)
        assert root == pytest.approx(200.0 / 3.0, rel=1e-5)

    def test_bad_initial(self):
        with pytest.raises(SimulationError):
            solve_fixed_point(lambda x: x, initial=0.0)

    def test_timing_like_shape(self):
        # Mimics the timing model: base + queueing that falls with x.
        def f(x):
            rho = min(1000.0 / x, 0.98)
            return 50.0 + 30.0 * rho / (1.0 - rho)

        root = solve_fixed_point(f, initial=1.0)
        assert root == pytest.approx(f(root), rel=1e-5)
