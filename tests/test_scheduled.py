"""Tests for the scheduler-driven (FR-FCFS) detailed engine."""

import pytest

from repro.errors import SimulationError
from repro.params.system import scaled_system
from repro.sim.scheduled import ScheduledEngine


@pytest.fixture
def config():
    return scaled_system(ways=1, scale=1.0 / 1024.0)


class TestScheduledEngine:
    def test_all_requests_complete(self, config):
        engine = ScheduledEngine(config)
        sets = [(i * 13) % 1024 for i in range(500)]
        result = engine.replay_sets(sets, arrival_interval_ns=10.0)
        assert result.requests == 500
        assert result.total_ns > 0
        assert result.avg_latency_ns > 0

    def test_row_locality_rewarded(self, config):
        # Same set repeatedly: FR-FCFS sees row hits; scattered sets don't.
        engine_hot = ScheduledEngine(config)
        hot = engine_hot.replay_sets([0] * 300, arrival_interval_ns=30.0)
        engine_cold = ScheduledEngine(config)
        # Stride through distinct rows of one bank's channel.
        cold_sets = [(i * 32 * 8 * 16) % (1 << 18) for i in range(300)]
        cold = engine_cold.replay_sets(cold_sets, arrival_interval_ns=30.0)
        assert hot.row_hit_rate > cold.row_hit_rate
        assert hot.avg_latency_ns < cold.avg_latency_ns

    def test_latency_grows_with_load(self, config):
        # Confine traffic to channel 0 (row groups that are multiples of
        # the channel count) so the bus actually saturates: its service
        # time is ~4.5ns per 72B transfer, so 1.5ns arrivals oversubscribe.
        sets = [(i % 16) * 32 * 8 for i in range(1200)]
        latencies = []
        for interval in (20.0, 4.0, 1.5):
            engine = ScheduledEngine(config)
            result = engine.replay_sets(list(sets), arrival_interval_ns=interval)
            latencies.append(result.avg_latency_ns)
        assert latencies[0] <= latencies[1] <= latencies[2]
        assert latencies[2] > latencies[0]

    def test_queue_backpressure(self, config):
        engine = ScheduledEngine(config, queue_capacity=2)
        # Hammer one channel (all sets map to channel 0).
        sets = [0] * 200
        result = engine.replay_sets(sets, arrival_interval_ns=0.5)
        assert result.requests == 200
        assert result.max_queue_depth <= 2

    def test_validation(self, config):
        engine = ScheduledEngine(config)
        with pytest.raises(SimulationError):
            engine.replay_sets([], arrival_interval_ns=1.0)
        with pytest.raises(SimulationError):
            engine.replay_sets([0], arrival_interval_ns=0.0)

    def test_replay_trace_helper(self, config):
        from repro.cache.geometry import CacheGeometry
        from repro.sim.trace import trace_from_arrays

        geometry = CacheGeometry(config.dram_cache.capacity_bytes, 1)
        trace = trace_from_arrays(
            "t", [i * 64 for i in range(100)], [0] * 100, 40.0
        )
        engine = ScheduledEngine(config)
        result = engine.replay_trace(trace, geometry, arrival_interval_ns=20.0)
        assert result.requests == 100
