"""End-to-end checks that every example script runs and prints sane
output (small sizes via --accesses where supported)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=600):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--accesses", "30000")
        assert "hit rate" in out
        assert "ACCORD SRAM overhead: 320 bytes" in out

    def test_graph_analytics(self):
        out = run_example("graph_analytics_cache_study.py", "--accesses", "20000")
        assert "pr_twi" in out
        assert "ACCORD SWS(8,2)" in out

    def test_design_space(self):
        out = run_example("design_space_exploration.py", "--accesses", "15000",
                          "--workload", "libq")
        assert "best:" in out

    def test_predictor_comparison_importable(self):
        # Full run is minutes; validate the module's table wiring only.
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "predictor_comparison", EXAMPLES / "predictor_comparison.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert len(module.PREDICTORS) == 8
        assert module.pretty_bytes(0) == "0"
        assert module.pretty_bytes(4 * 1024 * 1024) == "4MB"
        assert module.pretty_bytes(320) == "320B"

    def test_row_buffer_study(self):
        out = run_example("row_buffer_study.py")
        assert "row-hit rate" in out
        assert "FR-FCFS" in out
