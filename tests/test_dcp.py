"""Tests for the DCP (DRAM-cache presence + way) directory."""

from repro.cache.dcp import DcpDirectory


class TestDcp:
    def test_insert_lookup_remove(self):
        dcp = DcpDirectory()
        assert dcp.lookup(100) is None
        dcp.insert(100, 3)
        assert dcp.lookup(100) == 3
        dcp.remove(100)
        assert dcp.lookup(100) is None

    def test_remove_missing_is_noop(self):
        dcp = DcpDirectory()
        dcp.remove(42)  # must not raise
        assert len(dcp) == 0

    def test_update_way(self):
        dcp = DcpDirectory()
        dcp.insert(100, 1)
        dcp.insert(100, 2)
        assert dcp.lookup(100) == 2
        assert len(dcp) == 1

    def test_hit_rate(self):
        dcp = DcpDirectory()
        dcp.insert(1, 0)
        dcp.lookup(1)
        dcp.lookup(2)
        assert dcp.hit_rate() == 0.5
        assert DcpDirectory().hit_rate() == 0.0
