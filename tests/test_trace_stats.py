"""Tests for trace representation/IO and the stats registry."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceError
from repro.sim.stats import CacheStats
from repro.sim.trace import Trace, load_trace, save_trace, trace_from_arrays


class TestTrace:
    def test_basic_properties(self):
        trace = trace_from_arrays("t", [0, 64, 128], [0, 1, 0], 50.0)
        assert len(trace) == 3
        assert trace.read_count == 2
        assert trace.write_count == 1
        assert trace.total_instructions == 100.0

    def test_iteration(self):
        trace = trace_from_arrays("t", [0, 64], [0, 1], 10.0)
        records = list(trace)
        assert records[0].addr == 0 and not records[0].is_write
        assert records[1].addr == 64 and records[1].is_write

    def test_slice(self):
        trace = trace_from_arrays("t", list(range(0, 640, 64)), [0] * 10, 10.0)
        sub = trace.slice(2, 5)
        assert len(sub) == 3
        assert sub.addrs == [128, 192, 256]

    def test_footprint(self):
        trace = trace_from_arrays("t", [0, 1, 63, 64, 128], [0] * 5, 10.0)
        assert trace.footprint_lines() == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            Trace("t", [0, 64], bytearray([0]), 10.0)

    def test_bad_ipa_rejected(self):
        with pytest.raises(TraceError):
            Trace("t", [0], bytearray([0]), 0.0)


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = trace_from_arrays("roundtrip test", [0, 64, 4096], [0, 1, 0], 37.5)
        path = str(tmp_path / "t.trace")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.addrs == trace.addrs
        assert list(loaded.writes) == list(trace.writes)
        assert loaded.instructions_per_access == trace.instructions_per_access

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "bad2.trace"
        path.write_text("# repro-trace-v1\nR 10 20\n")
        with pytest.raises(TraceError):
            load_trace(str(path))

    @given(addrs=st.lists(st.integers(min_value=0, max_value=2**48), min_size=1,
                          max_size=50),
           seed=st.integers(min_value=0, max_value=100))
    def test_property_roundtrip(self, addrs, seed):
        import os
        import tempfile

        writes = [(a + seed) % 2 for a in addrs]
        trace = trace_from_arrays("prop", addrs, writes, 12.5)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "p.trace")
            save_trace(trace, path)
            loaded = load_trace(path)
        assert loaded.addrs == trace.addrs
        assert list(loaded.writes) == list(trace.writes)


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0

    def test_prediction_accuracy(self):
        stats = CacheStats(predicted_hits=10, correct_predictions=9)
        assert stats.prediction_accuracy == 0.9
        assert CacheStats().prediction_accuracy == 0.0

    def test_total_transfers(self):
        stats = CacheStats(
            cache_read_transfers=5,
            cache_write_transfers=2,
            replacement_update_transfers=1,
            swap_transfers=2,
        )
        assert stats.total_cache_transfers == 10

    def test_probes_per_read(self):
        stats = CacheStats(demand_reads=10, first_probes=10, hit_extra_probes=3,
                           miss_extra_probes=2)
        assert stats.probes_per_read == 1.5
        assert stats.extra_probes == 5

    def test_merge(self):
        a = CacheStats(hits=1, misses=2)
        a.bump("custom", 5)
        b = CacheStats(hits=3, misses=4)
        b.bump("custom", 2)
        a.merge(b)
        assert a.hits == 4 and a.misses == 6
        assert a.extras["custom"] == 7

    def test_as_dict_includes_derived(self):
        stats = CacheStats(hits=1, misses=1, demand_reads=2, first_probes=2)
        d = stats.as_dict()
        assert d["hit_rate"] == 0.5
        assert "probes_per_read" in d
        assert "total_cache_transfers" in d
