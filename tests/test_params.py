"""Tests for the configuration layer (Table III parameters, scaling)."""

import pytest

from repro.errors import ConfigError
from repro.params.system import (
    CacheGeometryConfig,
    CoreConfig,
    SystemConfig,
    paper_system,
    scaled_system,
)
from repro.params.timing import DramTiming, NvmTiming


class TestCoreConfig:
    def test_paper_defaults(self):
        config = CoreConfig()
        assert config.num_cores == 16
        assert config.frequency_ghz == 3.0
        assert config.issue_width == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            CoreConfig(num_cores=0)
        with pytest.raises(ConfigError):
            CoreConfig(mlp=0.5)
        with pytest.raises(ConfigError):
            CoreConfig(base_cpi=0.0)


class TestCacheGeometryConfig:
    def test_derived(self):
        config = CacheGeometryConfig(8 * 1024 * 1024, 16)
        assert config.num_lines == 128 * 1024
        assert config.num_sets == 8 * 1024

    def test_validation(self):
        with pytest.raises(ConfigError):
            CacheGeometryConfig(0, 1)
        with pytest.raises(ConfigError):
            CacheGeometryConfig(8 * 1024, 3)  # sets not a power of two


class TestTimings:
    def test_dram_latency_ordering(self):
        timing = DramTiming()
        assert timing.row_hit_ns < timing.row_empty_ns < timing.row_miss_ns

    def test_nvm_slower_than_dram(self):
        dram = DramTiming()
        nvm = NvmTiming()
        # Paper: NVM read 2-4x, write 4x DRAM latency.
        assert nvm.read_ns >= 2 * dram.row_miss_ns
        assert nvm.write_ns >= nvm.read_ns

    def test_validation(self):
        with pytest.raises(ConfigError):
            DramTiming(t_cas=0)
        with pytest.raises(ConfigError):
            NvmTiming(read_ns=-1)


class TestSystemConfig:
    def test_paper_system(self):
        config = paper_system(ways=2)
        assert config.dram_cache.capacity_bytes == 4 * 1024 * 1024 * 1024
        assert config.dram_cache.ways == 2
        assert config.nvm_capacity_bytes == 128 * 1024 * 1024 * 1024
        assert config.dram_bus.aggregate_bandwidth_gbps == pytest.approx(128.0)
        assert config.nvm_bus.aggregate_bandwidth_gbps == pytest.approx(32.0)

    def test_scaled_system_preserves_ratios(self):
        config = scaled_system(ways=2, scale=1.0 / 128.0)
        assert config.dram_cache.capacity_bytes == 32 * 1024 * 1024
        ratio = config.nvm_capacity_bytes / config.dram_cache.capacity_bytes
        assert ratio == pytest.approx(32.0)  # 128GB / 4GB

    def test_scale_validation(self):
        with pytest.raises(ConfigError):
            scaled_system(scale=0.0)
        with pytest.raises(ConfigError):
            scaled_system(scale=2.0)

    def test_with_dram_cache(self):
        config = scaled_system()
        resized = config.with_dram_cache(16 * 1024 * 1024, 4)
        assert resized.dram_cache.ways == 4
        assert config.dram_cache.ways == 1  # original untouched

    def test_cache_cannot_exceed_memory(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                dram_cache=CacheGeometryConfig(4 * 1024 * 1024 * 1024, 1),
                nvm_capacity_bytes=1024,
            )
