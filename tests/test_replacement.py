"""Unit tests for replacement policies."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import (
    LruReplacement,
    NruReplacement,
    RandomReplacement,
    make_replacement,
)
from repro.cache.storage import TagStore
from repro.utils.rng import XorShift64


@pytest.fixture
def geom():
    return CacheGeometry(16 * 1024, 4)


@pytest.fixture
def store(geom):
    return TagStore(geom)


class TestRandom:
    def test_prefers_invalid_way(self, store):
        policy = RandomReplacement(XorShift64(1))
        store.install(0, 0, 10)
        store.install(0, 2, 12)
        victim = policy.victim(0, (0, 1, 2, 3), store)
        assert victim in (1, 3)

    def test_uniform_when_full(self, store):
        policy = RandomReplacement(XorShift64(1))
        for way in range(4):
            store.install(0, way, way + 1)
        counts = {w: 0 for w in range(4)}
        for _ in range(4000):
            counts[policy.victim(0, (0, 1, 2, 3), store)] += 1
        for count in counts.values():
            assert 800 < count < 1200

    def test_respects_candidates(self, store):
        policy = RandomReplacement(XorShift64(1))
        for way in range(4):
            store.install(0, way, way + 1)
        for _ in range(100):
            assert policy.victim(0, (1, 3), store) in (1, 3)

    def test_no_update_cost(self):
        assert RandomReplacement().update_transfers_on_hit == 0


class TestLru:
    def test_evicts_least_recent(self, geom, store):
        policy = LruReplacement(geom)
        for way in range(4):
            store.install(0, way, way + 1)
            policy.on_install(0, way)
        policy.on_hit(0, 0)  # way 0 becomes MRU
        assert policy.victim(0, (0, 1, 2, 3), store) == 1

    def test_charges_update_on_hit(self, geom):
        assert LruReplacement(geom).update_transfers_on_hit == 1

    def test_prefers_invalid(self, geom, store):
        policy = LruReplacement(geom)
        store.install(0, 0, 1)
        policy.on_install(0, 0)
        assert policy.victim(0, (0, 1, 2, 3), store) == 1


class TestNru:
    def test_avoids_referenced(self, geom, store):
        policy = NruReplacement(geom, XorShift64(3))
        for way in range(4):
            store.install(0, way, way + 1)
            policy.on_install(0, way)
        # All referenced -> epoch clears, then victim is any way.
        first = policy.victim(0, (0, 1, 2, 3), store)
        assert first in (0, 1, 2, 3)
        policy.on_hit(0, 2)
        # Now only way 2 is referenced; victim must not be 2.
        for _ in range(50):
            assert policy.victim(0, (0, 1, 2, 3), store) != 2


class TestFactory:
    def test_known_names(self, geom):
        assert isinstance(make_replacement("random", geom), RandomReplacement)
        assert isinstance(make_replacement("LRU", geom), LruReplacement)
        assert isinstance(make_replacement("nru", geom), NruReplacement)

    def test_unknown_rejected(self, geom):
        with pytest.raises(ValueError):
            make_replacement("plru", geom)
