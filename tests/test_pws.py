"""Unit tests for Probabilistic Way-Steering."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import RandomReplacement
from repro.cache.storage import TagStore
from repro.core.pws import ProbabilisticWaySteering
from repro.core.steering import preferred_way
from repro.errors import PolicyError
from repro.utils.rng import XorShift64


@pytest.fixture
def geom():
    return CacheGeometry(8 * 1024, 2)


def install_fraction_preferred(pws, geom, trials=4000):
    store = TagStore(geom)
    replacement = RandomReplacement(XorShift64(9))
    hits = 0
    for tag in range(trials):
        way = pws.choose_install_way(0, tag, 0, store, replacement)
        if way == preferred_way(tag, geom.ways):
            hits += 1
    return hits / trials


class TestBias:
    def test_pip_85(self, geom):
        pws = ProbabilisticWaySteering(geom, pip=0.85, rng=XorShift64(1))
        fraction = install_fraction_preferred(pws, geom)
        assert 0.83 < fraction < 0.87

    def test_pip_50_unbiased(self, geom):
        pws = ProbabilisticWaySteering(geom, pip=0.5, rng=XorShift64(1))
        fraction = install_fraction_preferred(pws, geom)
        assert 0.47 < fraction < 0.53

    def test_pip_100_direct_mapped(self, geom):
        pws = ProbabilisticWaySteering(geom, pip=1.0, rng=XorShift64(1))
        assert install_fraction_preferred(pws, geom, trials=500) == 1.0

    def test_pip_0_always_alternate(self, geom):
        pws = ProbabilisticWaySteering(geom, pip=0.0, rng=XorShift64(1))
        assert install_fraction_preferred(pws, geom, trials=500) == 0.0


class TestValidation:
    def test_rejects_bad_pip(self, geom):
        with pytest.raises(PolicyError):
            ProbabilisticWaySteering(geom, pip=1.5)
        with pytest.raises(PolicyError):
            ProbabilisticWaySteering(geom, pip=-0.1)

    def test_one_way_geometry_degenerates(self):
        g = CacheGeometry(8 * 1024, 1)
        pws = ProbabilisticWaySteering(g, pip=0.85)
        assert pws.pip == 1.0  # forced direct-mapped

    def test_zero_storage(self, geom):
        assert ProbabilisticWaySteering(geom).storage_bits() == 0


class TestSteerAmong:
    def test_respects_candidate_list(self, geom):
        pws = ProbabilisticWaySteering(geom, pip=0.85, rng=XorShift64(2))
        tag = 4
        pref = preferred_way(tag, 2)
        other = 1 - pref
        for _ in range(100):
            assert pws.steer_among(0, (pref, other), tag) in (pref, other)

    def test_single_candidate(self, geom):
        pws = ProbabilisticWaySteering(geom, pip=0.5, rng=XorShift64(2))
        tag = 4
        pref = preferred_way(tag, 2)
        assert pws.steer_among(0, (pref,), tag) == pref

    def test_preferred_must_be_candidate(self, geom):
        pws = ProbabilisticWaySteering(geom, pip=0.85, rng=XorShift64(2))
        tag = 4
        non_pref = 1 - preferred_way(tag, 2)
        with pytest.raises(PolicyError):
            pws.steer_among(0, (non_pref,), tag)

    def test_all_ways_candidates(self, geom):
        pws = ProbabilisticWaySteering(geom, pip=0.85)
        assert tuple(pws.candidate_ways(0, 7)) == (0, 1)
