"""Unit tests for steering base classes and the preferred-way function."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import RandomReplacement
from repro.cache.storage import TagStore
from repro.core.steering import (
    DirectMappedSteering,
    UnbiasedSteering,
    preferred_way,
    region_id,
    tag_hash,
    ways_bits,
)
from repro.utils.rng import XorShift64


class TestPreferredWay:
    def test_deterministic(self):
        for tag in range(100):
            assert preferred_way(tag, 2) == preferred_way(tag, 2)

    def test_range(self):
        for ways in (2, 4, 8):
            for tag in range(1000):
                assert 0 <= preferred_way(tag, ways) < ways

    def test_balanced_across_tags(self):
        # The hash should spread preferred ways roughly evenly.
        for ways in (2, 4, 8):
            counts = [0] * ways
            for tag in range(8000):
                counts[preferred_way(tag, ways)] += 1
            for count in counts:
                assert 0.8 * 8000 / ways < count < 1.2 * 8000 / ways

    def test_conflicting_tags_decorrelated(self):
        # Tags differing by the way count (the universal-aliasing case)
        # must NOT all share a preferred way — the reason we hash.
        differing = sum(
            preferred_way(tag, 2) != preferred_way(tag + 2, 2)
            for tag in range(2000)
        )
        assert differing > 600  # ~50% expected

    def test_tag_hash_stability(self):
        assert tag_hash(12345) == tag_hash(12345)
        assert tag_hash(1) != tag_hash(2)


class TestWaysBits:
    def test_values(self):
        assert ways_bits(1) == 0
        assert ways_bits(2) == 1
        assert ways_bits(8) == 3


class TestRegionId:
    def test_4kb_default(self):
        assert region_id(0) == region_id(4095)
        assert region_id(4096) == region_id(0) + 1

    def test_custom_size(self):
        assert region_id(1024, region_size=1024) == 1


class TestUnbiased:
    def test_all_ways_candidates(self):
        g = CacheGeometry(8 * 1024, 4)
        steering = UnbiasedSteering(g)
        assert tuple(steering.candidate_ways(0, 123)) == (0, 1, 2, 3)

    def test_delegates_to_replacement(self):
        g = CacheGeometry(8 * 1024, 2)
        steering = UnbiasedSteering(g)
        store = TagStore(g)
        store.install(0, 0, 5)
        way = steering.choose_install_way(0, 9, 0, store, RandomReplacement(XorShift64(1)))
        assert way == 1  # random replacement prefers the invalid way

    def test_zero_storage(self):
        assert UnbiasedSteering(CacheGeometry(8 * 1024, 2)).storage_bits() == 0


class TestDirectMapped:
    def test_one_way_cache(self):
        g = CacheGeometry(8 * 1024, 1)
        steering = DirectMappedSteering(g)
        assert tuple(steering.candidate_ways(0, 77)) == (0,)
        assert steering.choose_install_way(0, 77, 0, TagStore(g), RandomReplacement()) == 0

    def test_degenerate_multiway(self):
        # PIP=100% semantics: a single tag-determined candidate.
        g = CacheGeometry(8 * 1024, 2)
        steering = DirectMappedSteering(g)
        candidates = steering.candidate_ways(0, 77)
        assert len(candidates) == 1
        assert candidates[0] == preferred_way(77, 2)
