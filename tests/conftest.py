"""Shared fixtures: small geometries and deterministic RNGs."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.utils.rng import XorShift64


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path_factory, monkeypatch):
    """Point the on-disk result store at a per-session temp directory so
    tests never read or pollute the user's ~/.cache/repro."""
    root = tmp_path_factory.getbasetemp() / "repro-results"
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(root))


@pytest.fixture(autouse=True)
def _no_ambient_fault_plan(monkeypatch):
    """Fault injection is opt-in per test, never inherited from the
    invoking shell's REPRO_FAULT_PLAN."""
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)


@pytest.fixture
def geom_dm():
    """Tiny direct-mapped geometry: 8KB, 64B lines -> 128 sets."""
    return CacheGeometry(8 * 1024, 1)


@pytest.fixture
def geom_2way():
    """Tiny 2-way geometry: 8KB -> 64 sets x 2 ways."""
    return CacheGeometry(8 * 1024, 2)


@pytest.fixture
def geom_8way():
    """Tiny 8-way geometry: 32KB -> 64 sets x 8 ways."""
    return CacheGeometry(32 * 1024, 8)


@pytest.fixture
def rng():
    return XorShift64(1234)


def make_addr(geometry: CacheGeometry, set_index: int, tag: int) -> int:
    """Byte address mapping to (set_index, tag) in the given geometry."""
    return geometry.addr_of(set_index, tag)
