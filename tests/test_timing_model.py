"""Tests for the interval timing model and the CPU performance model."""

import pytest

from repro.errors import SimulationError
from repro.params.system import CoreConfig, scaled_system
from repro.sim.cpu import CorePerformance, rate_mode_performance, weighted_speedup
from repro.sim.stats import CacheStats
from repro.sim.timing_model import IntervalTimingModel


def stats_for(reads, hit_rate, transfers_per_read=1.0, hit_extras=0,
              writebacks=0):
    misses = int(reads * (1.0 - hit_rate))
    stats = CacheStats(
        demand_reads=reads,
        hits=reads - misses,
        misses=misses,
        first_probes=reads,
        hit_extra_probes=hit_extras,
        cache_read_transfers=int(reads * transfers_per_read),
        cache_write_transfers=misses,
        nvm_reads=misses,
        nvm_writes=writebacks,
        installs=misses,
    )
    return stats


@pytest.fixture
def model():
    return IntervalTimingModel(scaled_system(ways=1))


class TestBasics:
    def test_runtime_positive_and_converged(self, model):
        stats = stats_for(10_000, 0.75)
        breakdown = model.evaluate(stats, instructions=400_000)
        assert breakdown.runtime_ns > breakdown.base_ns > 0
        assert 0.0 <= breakdown.dram_utilization <= 0.98
        assert 0.0 <= breakdown.nvm_utilization <= 0.98

    def test_no_reads_is_base_time(self, model):
        breakdown = model.evaluate(CacheStats(), instructions=1000)
        assert breakdown.runtime_ns == pytest.approx(breakdown.base_ns)
        assert breakdown.stall_ns == 0.0

    def test_rejects_bad_inputs(self, model):
        with pytest.raises(SimulationError):
            model.evaluate(CacheStats(), instructions=0)
        with pytest.raises(SimulationError):
            model.evaluate(CacheStats(), instructions=100, num_cores=0)


class TestSensitivities:
    def test_higher_hit_rate_is_faster(self, model):
        slow = model.evaluate(stats_for(10_000, 0.60), instructions=400_000)
        fast = model.evaluate(stats_for(10_000, 0.90), instructions=400_000)
        assert fast.runtime_ns < slow.runtime_ns

    def test_more_transfers_is_slower(self, model):
        lean = model.evaluate(stats_for(10_000, 0.75, transfers_per_read=1.0),
                              instructions=400_000)
        fat = model.evaluate(stats_for(10_000, 0.75, transfers_per_read=4.0),
                             instructions=400_000)
        assert fat.runtime_ns > lean.runtime_ns

    def test_hit_extra_probes_add_latency(self, model):
        clean = model.evaluate(stats_for(10_000, 0.75), instructions=400_000)
        probed = model.evaluate(stats_for(10_000, 0.75, hit_extras=5_000),
                                instructions=400_000)
        assert probed.runtime_ns > clean.runtime_ns

    def test_more_cores_saturate_buses(self, model):
        stats = stats_for(10_000, 0.60, transfers_per_read=2.0, writebacks=4000)
        one = model.evaluate(stats, instructions=400_000, num_cores=1)
        sixteen = model.evaluate(stats, instructions=400_000, num_cores=16)
        assert sixteen.nvm_utilization > one.nvm_utilization
        assert sixteen.runtime_ns > one.runtime_ns

    def test_fixed_point_is_consistent(self, model):
        # At the solution, recomputing runtime from the reported
        # components reproduces the runtime.
        stats = stats_for(10_000, 0.70, transfers_per_read=1.5)
        breakdown = model.evaluate(stats, instructions=400_000)
        assert breakdown.runtime_ns == pytest.approx(
            breakdown.base_ns + breakdown.stall_ns, rel=1e-4
        )

    def test_cpi_helper(self, model):
        stats = stats_for(1000, 0.75)
        breakdown = model.evaluate(stats, instructions=40_000)
        cpi = breakdown.cycles_per_instruction(40_000, 3.0)
        assert cpi > 0.7  # cannot beat the base CPI


class TestCpuModel:
    def test_core_performance_metrics(self):
        perf = CorePerformance(instructions=3000.0, runtime_ns=1000.0)
        config = CoreConfig()
        assert perf.ips == 3.0
        assert perf.cpi(config) == pytest.approx(1.0)
        assert perf.ipc(config) == pytest.approx(1.0)

    def test_rejects_bad_values(self):
        with pytest.raises(SimulationError):
            CorePerformance(0.0, 10.0)
        with pytest.raises(SimulationError):
            CorePerformance(10.0, 0.0)

    def test_weighted_speedup_rate_mode(self):
        base = rate_mode_performance(1000.0, 200.0, 16)
        faster = rate_mode_performance(1000.0, 100.0, 16)
        assert weighted_speedup(faster, base) == pytest.approx(2.0)

    def test_weighted_speedup_heterogeneous(self):
        base = [CorePerformance(100.0, 100.0), CorePerformance(100.0, 100.0)]
        mixed = [CorePerformance(100.0, 50.0), CorePerformance(100.0, 200.0)]
        assert weighted_speedup(mixed, base) == pytest.approx((2.0 + 0.5) / 2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            weighted_speedup([CorePerformance(1.0, 1.0)], [])
