"""Set-sharded execution: deterministic merge, equivalence, fallback.

The shard engine (:mod:`repro.sim.shard`) claims that for designs whose
every policy role declares the ``shardable`` capability, a run split
into set-range shards and merged is *bit-identical* to the serial run.
These tests pin that claim the same way ``test_fastpath.py`` pins the
hot loop: every benchmark design variant, serial vs sharded, whole
``RunResult`` equality (counters, timing, and per-epoch phase series).

The merge operators themselves are property-tested — associative,
commutative, identity-preserving — because the executor merges shard
outcomes in whatever order workers finish.
"""

import multiprocessing
import os
import warnings
from dataclasses import fields

import pytest

from repro.core.accord import AccordDesign
from repro.core.protocols import cache_is_shardable, unshardable_roles
from repro.errors import ConfigError, SimulationError
from repro.params.system import scaled_system
from repro.sim.bench import BENCH_DESIGNS
from repro.sim.phases import PhaseSample, PhaseSeries
from repro.sim.shard import (
    WORKER_ENV,
    in_worker_process,
    mark_worker_process,
    merge_outcomes,
    run_shard,
    run_sharded,
)
from repro.sim.stats import CacheStats
from repro.sim.system import Simulator, build_dram_cache
from repro.sim.trace import Trace
from repro.utils.rng import XorShift64

SCALE = 1.0 / 2048.0


def random_trace(seed: int, n: int = 3000, footprint_lines: int = 700) -> Trace:
    """Randomized mixed read/write trace (same shape as test_fastpath)."""
    rng = XorShift64(seed)
    addrs = []
    writes = bytearray()
    for _ in range(n):
        addrs.append(rng.next_below(footprint_lines) * 64)
        writes.append(1 if rng.next_below(4) == 0 else 0)
    return Trace(f"random-{seed}", addrs, writes, instructions_per_access=40.0)


def random_stats(seed: int) -> CacheStats:
    rng = XorShift64(seed)
    stats = CacheStats()
    for f in fields(CacheStats):
        if f.name == "extras":
            continue
        setattr(stats, f.name, rng.next_below(10_000))
    stats.bump("custom_counter", rng.next_below(50))
    return stats


def merged(a: CacheStats, b: CacheStats) -> CacheStats:
    """Out-of-place merge (CacheStats.merge mutates the receiver)."""
    out = CacheStats.from_dict(a.to_dict())
    out.merge(b)
    return out


def random_series(seed: int, epoch: int = 100, epochs: int = 5) -> PhaseSeries:
    rng = XorShift64(seed)
    samples = []
    start = 0
    for index in range(epochs):
        if rng.next_below(4) == 0:
            continue  # a shard can be silent in an epoch
        accesses = rng.next_below(epoch) + 1
        hits = rng.next_below(accesses + 1)
        predicted = rng.next_below(hits + 1)
        samples.append(
            PhaseSample(
                index=index,
                start_access=start,
                accesses=accesses,
                hits=hits,
                predicted_hits=predicted,
                correct_predictions=rng.next_below(predicted + 1),
                nvm_reads=rng.next_below(200),
                nvm_writes=rng.next_below(100),
                writebacks=rng.next_below(100),
            )
        )
        start += accesses
    return PhaseSeries(epoch=epoch, samples=tuple(samples))


def _design_id(design):
    return design.display_name.replace(" ", "_")


@pytest.fixture(scope="module")
def trace():
    t = random_trace(311)
    assert any(t.writes) and not all(t.writes)
    return t


class TestCacheStatsMergeProperties:
    def test_identity(self):
        stats = random_stats(1)
        assert merged(stats, CacheStats()).to_dict() == stats.to_dict()
        assert merged(CacheStats(), stats).to_dict() == stats.to_dict()

    def test_commutative(self):
        a, b = random_stats(2), random_stats(3)
        assert merged(a, b).to_dict() == merged(b, a).to_dict()

    def test_associative(self):
        a, b, c = random_stats(4), random_stats(5), random_stats(6)
        left = merged(merged(a, b), c)
        right = merged(a, merged(b, c))
        assert left.to_dict() == right.to_dict()

    def test_extras_merge(self):
        a, b = CacheStats(), CacheStats()
        a.bump("only_a", 3)
        b.bump("only_a", 4)
        b.bump("only_b", 5)
        out = merged(a, b)
        assert out.extras == {"only_a": 7, "only_b": 5}


class TestPhaseSeriesMergeProperties:
    def test_identity(self):
        series = random_series(1)
        empty = PhaseSeries(epoch=series.epoch, samples=())
        assert PhaseSeries.merge([series, empty]).to_dict() == (
            PhaseSeries.merge([series]).to_dict()
        )

    def test_commutative(self):
        a, b = random_series(2), random_series(3)
        assert PhaseSeries.merge([a, b]).to_dict() == (
            PhaseSeries.merge([b, a]).to_dict()
        )

    def test_associative(self):
        a, b, c = random_series(4), random_series(5), random_series(6)
        left = PhaseSeries.merge([PhaseSeries.merge([a, b]), c])
        right = PhaseSeries.merge([a, PhaseSeries.merge([b, c])])
        assert left.to_dict() == right.to_dict()

    def test_aligns_by_global_epoch_index(self):
        a = PhaseSeries(epoch=10, samples=(
            PhaseSample(index=2, start_access=0, accesses=4, hits=1,
                        predicted_hits=0, correct_predictions=0,
                        nvm_reads=3, nvm_writes=0, writebacks=0),
        ))
        b = PhaseSeries(epoch=10, samples=(
            PhaseSample(index=0, start_access=0, accesses=6, hits=2,
                        predicted_hits=1, correct_predictions=1,
                        nvm_reads=4, nvm_writes=1, writebacks=2),
            PhaseSample(index=2, start_access=6, accesses=6, hits=3,
                        predicted_hits=2, correct_predictions=1,
                        nvm_reads=3, nvm_writes=0, writebacks=1),
        ))
        out = PhaseSeries.merge([a, b])
        assert [s.index for s in out.samples] == [0, 2]
        assert out.samples[1].accesses == 10
        assert out.samples[1].start_access == 6  # cumulative rebuild

    def test_rejects_mixed_epoch_lengths(self):
        a = PhaseSeries(epoch=10, samples=())
        b = PhaseSeries(epoch=20, samples=())
        with pytest.raises(SimulationError):
            PhaseSeries.merge([a, b])

    def test_rejects_empty_input(self):
        with pytest.raises(SimulationError):
            PhaseSeries.merge([])
        with pytest.raises(SimulationError):
            PhaseSeries.merge([None])


class TestSerialShardedEquivalence:
    """Every benchmark design: sharded run == serial run, bit for bit."""

    @pytest.mark.parametrize("design", BENCH_DESIGNS, ids=_design_id)
    def test_sharded_matches_serial(self, design, trace):
        config = scaled_system(ways=design.ways, scale=SCALE)
        serial = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            sharded = run_sharded(
                config, design, trace,
                warmup=0.3, shards=4, seed=5, inline=True,
            )
        assert sharded.to_dict() == serial.to_dict()

    @pytest.mark.parametrize("design", BENCH_DESIGNS, ids=_design_id)
    def test_sharded_matches_serial_with_phases(self, design, trace):
        config = scaled_system(ways=design.ways, scale=SCALE)
        serial = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, epoch=500
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            sharded = run_sharded(
                config, design, trace,
                warmup=0.3, epoch=500, shards=4, seed=5, inline=True,
            )
        assert sharded.to_dict() == serial.to_dict()
        if serial.phases is not None:
            assert sharded.phases is not None
            assert sharded.phases.to_dict() == serial.phases.to_dict()

    def test_process_pool_path_matches_serial(self, trace):
        """One design through real worker processes (not inline)."""
        design = AccordDesign(kind="pws", ways=2)
        config = scaled_system(ways=design.ways, scale=SCALE)
        serial = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, epoch=500
        )
        sharded = run_sharded(
            config, design, trace, warmup=0.3, epoch=500, shards=2, seed=5,
        )
        assert sharded.to_dict() == serial.to_dict()

    def test_pool_path_publishes_one_segment_and_unlinks(
        self, trace, monkeypatch
    ):
        """Workers attach to one shared segment; the parent unlinks it."""
        from multiprocessing import shared_memory

        import repro.exec.batching as batching

        published = []
        real = batching.publish_trace

        def spy(t, token):
            shm, ref = real(t, token)
            published.append(ref)
            return shm, ref

        monkeypatch.setattr(batching, "publish_trace", spy)
        design = AccordDesign(kind="pws", ways=2)
        config = scaled_system(ways=design.ways, scale=SCALE)
        serial = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3
        )
        sharded = run_sharded(
            config, design, trace, warmup=0.3, shards=2, seed=5,
        )
        assert sharded.to_dict() == serial.to_dict()
        assert len(published) == 1
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(
                name=published[0].shm_name, create=False
            )

    def test_pool_path_degrades_without_shared_memory(
        self, trace, monkeypatch
    ):
        """No /dev/shm: fall back to pickling materialized shards."""
        import repro.exec.batching as batching

        def refuse(t, token):
            raise OSError("shared memory unavailable")

        monkeypatch.setattr(batching, "publish_trace", refuse)
        design = AccordDesign(kind="pws", ways=2)
        config = scaled_system(ways=design.ways, scale=SCALE)
        serial = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3
        )
        sharded = run_sharded(
            config, design, trace, warmup=0.3, shards=2, seed=5,
        )
        assert sharded.to_dict() == serial.to_dict()

    def test_shard_count_exceeding_sets_is_clamped(self, trace):
        design = AccordDesign(kind="direct", ways=1)
        config = scaled_system(ways=design.ways, scale=SCALE)
        num_sets = build_dram_cache(design, config).geometry.num_sets
        serial = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3
        )
        sharded = run_sharded(
            config, design, trace,
            warmup=0.3, shards=num_sets * 3, seed=5, inline=True,
        )
        assert sharded.to_dict() == serial.to_dict()


class TestShardableCapability:
    def test_expected_classification(self):
        shardable = set()
        for design in BENCH_DESIGNS:
            config = scaled_system(ways=design.ways, scale=SCALE)
            if cache_is_shardable(build_dram_cache(design, config)):
                shardable.add(design.display_name)
        assert "pws-2way" in shardable
        assert "direct-1way" in shardable
        assert "mru-2way" in shardable
        # Global state: GWS tables (also inside accord/sws), the
        # dueling PSEL, and the cross-set CA cache must NOT shard.
        assert "gws-2way" not in shardable
        assert "ACCORD 2-way" not in shardable
        assert "ACCORD SWS(8,2)" not in shardable
        assert "dueling-2way" not in shardable
        assert "ca-1way" not in shardable

    def test_unshardable_roles_are_named(self):
        design = AccordDesign(kind="gws", ways=2)
        config = scaled_system(ways=design.ways, scale=SCALE)
        roles = unshardable_roles(build_dram_cache(design, config))
        assert "steering" in roles and "predictor" in roles

    def test_fallback_warns_once_per_design(self, trace):
        import repro.sim.shard as shard_mod

        design = AccordDesign(kind="gws", ways=2, label="warn-probe")
        config = scaled_system(ways=design.ways, scale=SCALE)
        # The warn-once memo is keyed by design identity (not label);
        # earlier tests may already have tripped gws. Start fresh.
        for k in [k for k in shard_mod._FALLBACK_WARNED if k[0] == "gws"]:
            shard_mod._FALLBACK_WARNED.discard(k)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                run_sharded(config, design, trace, warmup=0.3,
                            shards=2, seed=5, inline=True)
                run_sharded(config, design, trace, warmup=0.3,
                            shards=2, seed=5, inline=True)
            fallbacks = [w for w in caught
                         if "running serial" in str(w.message)]
            assert len(fallbacks) == 1
            assert "warn-probe" in str(fallbacks[0].message)
        finally:
            # Drop the memo so other tests see fresh warn-once state.
            key = [k for k in shard_mod._FALLBACK_WARNED if k[0] == "gws"]
            for k in key:
                shard_mod._FALLBACK_WARNED.discard(k)


class TestShardPlanning:
    def test_shards_partition_the_trace(self, trace):
        config = scaled_system(ways=2, scale=SCALE)
        geometry = build_dram_cache(
            AccordDesign(kind="pws", ways=2), config
        ).geometry
        shards = trace.shard(geometry, 4)
        seen = sorted(p for shard in shards for p in shard.positions.tolist())
        assert seen == list(range(len(trace)))
        # Set ranges must be disjoint across shards.
        owners = {}
        for shard in shards:
            for s in set(shard.set_indices):
                assert s not in owners, (
                    f"set {s} appears in shards {owners[s]} and {shard.index}"
                )
                owners[s] = shard.index

    def test_shard_is_memoized(self, trace):
        config = scaled_system(ways=2, scale=SCALE)
        geometry = build_dram_cache(
            AccordDesign(kind="pws", ways=2), config
        ).geometry
        assert trace.shard(geometry, 4) is trace.shard(geometry, 4)

    def test_shard_slice_bounds_checked(self, trace):
        from repro.errors import TraceError

        config = scaled_system(ways=2, scale=SCALE)
        geometry = build_dram_cache(
            AccordDesign(kind="pws", ways=2), config
        ).geometry
        with pytest.raises(TraceError):
            trace.shard_slice(geometry, 4, 99)

    def test_warm_index_splits_at_global_boundary(self, trace):
        config = scaled_system(ways=2, scale=SCALE)
        geometry = build_dram_cache(
            AccordDesign(kind="pws", ways=2), config
        ).geometry
        warm = int(len(trace) * 0.3)
        shards = trace.shard(geometry, 4)
        assert sum(s.warm_index(warm) for s in shards) == warm


class TestNestedPoolGuard:
    """A worker process must never spawn a grandchild pool."""

    def test_env_marker_detected(self, monkeypatch):
        monkeypatch.setenv(WORKER_ENV, "1")
        assert in_worker_process()
        monkeypatch.delenv(WORKER_ENV)
        if not multiprocessing.current_process().daemon:
            assert not in_worker_process()

    def test_mark_worker_process_sets_marker(self, monkeypatch):
        monkeypatch.delenv(WORKER_ENV, raising=False)
        mark_worker_process()
        try:
            assert os.environ.get(WORKER_ENV) == "1"
            assert in_worker_process()
        finally:
            os.environ.pop(WORKER_ENV, None)

    def test_worker_runs_shards_inline(self, trace, monkeypatch):
        """Inside a worker, run_sharded must not touch the pool class."""
        import repro.sim.shard as shard_mod

        def _boom(*args, **kwargs):
            raise AssertionError("nested pool spawned inside a worker")

        monkeypatch.setenv(WORKER_ENV, "1")
        monkeypatch.setattr(shard_mod, "ProcessPoolExecutor", _boom)
        design = AccordDesign(kind="pws", ways=2)
        config = scaled_system(ways=design.ways, scale=SCALE)
        serial = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3
        )
        sharded = run_sharded(
            config, design, trace, warmup=0.3, shards=4, seed=5,
        )
        assert sharded.to_dict() == serial.to_dict()


class TestMergeOutcomes:
    def test_rejects_empty(self):
        design = AccordDesign(kind="direct", ways=1)
        config = scaled_system(ways=1, scale=SCALE)
        with pytest.raises(SimulationError):
            merge_outcomes(design, config, [])

    def test_manual_shard_runs_merge_to_serial_result(self, trace):
        design = AccordDesign(kind="mru", ways=2)
        config = scaled_system(ways=design.ways, scale=SCALE)
        serial = Simulator(config, design, seed=5).run(
            trace, warmup_fraction=0.3, epoch=500
        )
        outcomes = [
            run_shard(config, design, trace, i, 3,
                      warmup=0.3, epoch=500, seed=5)
            for i in range(3)
        ]
        # Merge is order-independent: reversed shard order, same result.
        result = merge_outcomes(
            design, config, list(reversed(outcomes)), epoch=500
        )
        # Stats/phases/timing all match; workload name rides along.
        assert result.stats.to_dict() == serial.stats.to_dict()
        assert result.phases.to_dict() == serial.phases.to_dict()
        assert result.timing.runtime_ns == serial.timing.runtime_ns
        assert result.workload == serial.workload


class TestExecutorSharding:
    def test_executor_sharded_matches_serial(self):
        from repro.exec import Executor, JobKey

        designs = [
            AccordDesign(kind="pws", ways=2),   # shards
            AccordDesign(kind="gws", ways=2),   # falls back whole-job
        ]
        keys = [
            JobKey(design=d, workload="mcf", num_accesses=6000,
                   warmup=0.3, seed=7, epoch=1500)
            for d in designs
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            serial = Executor(jobs=1).run(keys)
            sharded = Executor(jobs=2, shards=2).run(keys)
        for key in keys:
            assert sharded[key].to_dict() == serial[key].to_dict()

    def test_shard_task_validation(self):
        from repro.exec import JobKey, ShardTask

        key = JobKey(design=AccordDesign(kind="pws", ways=2),
                     workload="mcf", num_accesses=1000)
        task = ShardTask(key, 1, 4)
        assert task.digest() == f"{key.digest()}-s1of4"
        assert "shard 2/4" in task.display
        with pytest.raises(ConfigError):
            ShardTask(key, 4, 4)
        with pytest.raises(ConfigError):
            ShardTask(key, 0, 1)

    def test_journal_shard_roundtrip(self, tmp_path):
        from repro.exec import JobKey, ShardTask, SweepJournal
        from repro.sim.shard import ShardOutcome

        key = JobKey(design=AccordDesign(kind="pws", ways=2),
                     workload="mcf", num_accesses=1000)
        task = ShardTask(key, 0, 2)
        outcome = ShardOutcome(
            stats=random_stats(9), phases=random_series(9),
            workload="mcf", instructions_per_access=40.0,
        )
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.begin([key])
        journal.record_shard(task, outcome)
        reloaded = SweepJournal(tmp_path / "sweep.jsonl")
        assert reloaded.load() == 0  # no whole jobs done yet
        record = reloaded.lookup_shard(task)
        assert record is not None
        restored = ShardOutcome.from_dict(record)
        assert restored.stats.to_dict() == outcome.stats.to_dict()
        assert restored.phases.to_dict() == outcome.phases.to_dict()

    def test_jobs_shards_budget_clamps_jobs_not_shards(self):
        from repro.experiments.common import Settings

        cores = os.cpu_count() or 1
        settings = Settings(jobs=cores * 4, shards=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            clamped = settings.budgeted()
        assert clamped.shards == 2  # the shard request is never reduced
        assert clamped.jobs == max(1, cores // 2)
        assert any("exceeds" in str(w.message) for w in caught)
